(* Regenerates the triaged regression corpus in test/corpus/.

   Each file is a hostile input that crashed (or could crash) a pipeline
   layer before the typed-error hardening: the filename prefix names the
   trust boundary it targets (xml / skip / container / policy) and the rest
   names the bug class. test_fuzz_regressions.ml replays every file and
   asserts a typed rejection.

   Usage: gen_corpus.exe DIR *)

module Bitio = Xmlac_skip_index.Bitio
module Encoder = Xmlac_skip_index.Encoder
module Layout = Xmlac_skip_index.Layout
module Tree = Xmlac_xml.Tree
module C = Xmlac_crypto.Secure_container

let cases : (string * string) list Lazy.t =
  lazy
    (let be_bytes value width =
       String.init width (fun i ->
           Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))
     in
     let tree = Tree.parse "<r><a>hello</a><b><c>world</c></b></r>" in
     let tcsbr = Encoder.encode ~layout:Layout.Tcsbr tree in
     let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-fuzz-24-byte-key!!" in
     let mht =
       C.to_bytes
         (C.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme:C.Ecb_mht ~key
            tcsbr)
     in
     let set_byte s i c =
       let b = Bytes.of_string s in
       Bytes.set b i c;
       Bytes.to_string b
     in
     let skip_header layout_byte tail =
       let w = Bitio.Writer.create () in
       Bitio.Writer.bytes w "XSKI";
       Bitio.Writer.bits w ~width:8 layout_byte;
       Bitio.Writer.bytes w tail;
       Bitio.Writer.contents w
     in
     (* TC body that closes an element that was never opened *)
     let close_without_open =
       let w = Bitio.Writer.create () in
       Bitio.Writer.bytes w "XSKI";
       Bitio.Writer.bits w ~width:8 (Layout.to_byte Layout.Tc);
       (* dictionary: one tag "a" *)
       Bitio.Writer.varint w 1;
       Bitio.Writer.varint w 1;
       Bitio.Writer.bytes w "a";
       Bitio.Writer.varint w 1 (* element count *);
       Bitio.Writer.varint w 1 (* body size *);
       Bitio.Writer.bits w ~width:2 3 (* kind_close with nothing open *);
       Bitio.Writer.bits w ~width:6 0;
       Bitio.Writer.contents w
     in
     [
       (* xml — Parser.Malformed, never an assert or OOB *)
       ("xml__unclosed_root.bin", "<r><a>hel");
       ("xml__stray_close.bin", "</r>");
       ("xml__mismatched_close.bin", "<r><a></b></r>");
       ("xml__text_outside_root.bin", "stray<r/>trailing");
       ("xml__bad_entity.bin", "<r>&#xZZZZ;</r>");
       ("xml__bad_attr.bin", "<r a=unquoted></r>");
       ("xml__second_root.bin", "<r></r><r2></r2>");
       ("xml__binary_garbage.bin", "\xff\xfe<\x00\x01>");
       (* skip index — previously OCaml [lsl] overflow, allocation bombs,
          assert-false and out-of-bounds reads *)
       ("skip__bad_magic.bin", "ZZZZ" ^ String.sub tcsbr 4 32);
       ("skip__unknown_layout.bin", skip_header 9 "");
       ("skip__nc_body_refused.bin", Encoder.encode ~layout:Layout.Nc tree);
       ( "skip__varint_overflow.bin",
         (* unbounded continuation bits once shifted past bit 62 of the
            OCaml int, yielding negative sizes *)
         skip_header (Layout.to_byte Layout.Tcs) (String.make 12 '\xff') );
       ( "skip__dict_bomb.bin",
         (* dictionary announcing ~2^40 entries: Array.init allocation *)
         let w = Bitio.Writer.create () in
         Bitio.Writer.bytes w "XSKI";
         Bitio.Writer.bits w ~width:8 (Layout.to_byte Layout.Tcs);
         Bitio.Writer.varint w (1 lsl 40);
         Bitio.Writer.contents w );
       ("skip__truncated_header.bin", String.sub tcsbr 0 5);
       ( "skip__truncated_body.bin",
         String.sub tcsbr 0 (String.length tcsbr - 3) );
       ("skip__close_without_open.bin", close_without_open);
       (* container — previously Invalid_argument / String.sub crashes *)
       ("container__truncated_header.bin", "XACR1\x03");
       ("container__bad_magic.bin", set_byte mht 0 'Z');
       ("container__bad_scheme.bin", set_byte mht 5 '\x09');
       ( "container__zero_chunk_size.bin",
         "XACR1\x03" ^ be_bytes 0 4 ^ be_bytes 64 4 ^ be_bytes 0 8 );
       ( "container__payload_overflow.bin",
         (* 8-byte length field overflowing the 63-bit OCaml int into a
            negative value, formerly a String.sub crash in decrypt_all *)
         "XACR1\x03" ^ be_bytes 512 4 ^ be_bytes 64 4
         ^ String.make 8 '\xff'
         ^ String.make 1024 'p' );
       ( "container__oversized_payload.bin",
         "XACR1\x03" ^ be_bytes 512 4 ^ be_bytes 64 4 ^ be_bytes 100_000 8 );
       ( "container__truncated_body.bin",
         String.sub mht 0 (String.length mht - 7) );
       ( "container__scheme_flip.bin",
         (* ECB-MHT bytes relabelled as plain ECB: geometry no longer adds
            up and must be rejected before any decryption *)
         set_byte mht 5 '\x00' );
       (* wire — hostile frames and replies against the terminal protocol;
          the frame reader, both payload decoders and the metadata
          validator must answer with a typed wire error, never an
          exception or a hostile-sized allocation *)
       ("wire__truncated_header.bin", "\x00\x00");
       ("wire__empty_frame.bin", be_bytes 0 4);
       ("wire__oversized_frame.bin", be_bytes (2 * 1024 * 1024) 4 ^ "x");
       ("wire__truncated_body.bin", be_bytes 100 4 ^ "short");
       ("wire__bad_opcode.bin", Xmlac_wire.Frame.encode "\x7f\x00\x00");
       ("wire__hello_bad_magic.bin", Xmlac_wire.Frame.encode "\x01ZZTP\x00\x01");
       (* a Siblings reply announcing 65535 digests *)
       ("wire__siblings_bomb.bin", "\x86\xff\xff");
       (* a Hash_state reply whose length field exceeds the padded size *)
       ("wire__hash_state_oversize.bin", "\x85\x03\xe8" ^ String.make 92 '\x00');
       (* a handshake advertising a geometry past the allocation cap *)
       ( "wire__hello_bomb_metadata.bin",
         Xmlac_wire.Protocol.encode_response
           (Xmlac_wire.Protocol.Hello_ok
              {
                Xmlac_wire.Protocol.meta_version = 1;
                scheme = C.Ecb_mht;
                chunk_size = 512;
                fragment_size = 64;
                payload_length = ((1 lsl 22) + 1) * 512;
                chunk_count = (1 lsl 22) + 1;
                integrity = true;
                batching = true;
                mux = false;
                trace = false;
                generation = 0;
                key_epoch = 0;
              }) );
       (* a v2 hello whose trace-id length field is zero (reserved) *)
       ( "wire__hello_trace_zero_len.bin",
         Xmlac_wire.Frame.encode "\x01XWTP\x00\x02\x02\x00\x00\x00" );
       (* a v2 hello whose container-id length field overshoots the cap *)
       ( "wire__hello_container_bomb.bin",
         Xmlac_wire.Frame.encode "\x01XWTP\x00\x02\x01\xff\xffx" );
       (* policy — Policy.of_string must return Error, never raise *)
       ("policy__bad_sign.bin", "p1 % //a\n");
       ("policy__bad_xpath.bin", "p1 + //a[[[\n");
       ("policy__duplicate_ids.bin", "p1 + //a\np1 - //b\n");
       ("policy__missing_fields.bin", "justoneword\n");
       ("policy__binary_garbage.bin", "\x00\xffp \x01+ //\xfe\n");
     ])

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "corpus" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, bytes) ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc bytes;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" name (String.length bytes))
    (Lazy.force cases)
