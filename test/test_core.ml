(* Tests for the access-control core: conflict resolution, the DOM oracle,
   and — centrally — the differential properties stating that the streaming
   evaluator computes exactly the oracle's view, with and without the Skip
   index, with and without queries. *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Event = Xmlac_xml.Event
module Parse = Xmlac_xpath.Parse
module Skip = Xmlac_skip_index

let check = Alcotest.check
let bool_t = Alcotest.bool

let qtest ?(count = 500) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

let tree_opt_t =
  Alcotest.testable
    (Fmt.option ~none:(Fmt.any "<empty>") Tree.pp)
    (fun a b ->
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

let policy_of rules =
  Policy.make
    (List.mapi
       (fun i (sign, path) ->
         Rule.make
           ~id:(Printf.sprintf "R%d" i)
           ~sign:(if sign then Rule.Permit else Rule.Deny)
           path)
       rules)

let xp = Parse.path

(* Conflict resolution ----------------------------------------------------- *)

let status_gen =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (list_size (int_range 0 3)
         (oneofl
            Conflict.
              [ Positive_active; Positive_pending; Negative_active; Negative_pending ])))

let prop_decide_equivalence =
  qtest ~count:2000 "Figure 4 algorithm ≡ three-valued condition" status_gen
    (fun levels ->
      Conflict.decide_node levels = Conflict.decide_node_via_conditions levels)

let test_decide_paper_cases () =
  let open Conflict in
  (* closed policy *)
  check bool_t "empty stack denies" true (decide_node [] = Deny);
  check bool_t "lone positive permits" true (decide_node [ [ Positive_active ] ] = Permit);
  check bool_t "denial takes precedence" true
    (decide_node [ [ Positive_active; Negative_active ] ] = Deny);
  check bool_t "most specific wins" true
    (decide_node [ [ Negative_active ]; [ Positive_active ] ] = Permit);
  check bool_t "most specific deny wins" true
    (decide_node [ [ Positive_active ]; [ Negative_active ] ] = Deny);
  check bool_t "pending negative blocks same-level positive" true
    (decide_node [ [ Positive_active; Negative_pending ] ] = Pending);
  check bool_t "pending positive over deny stays pending" true
    (decide_node [ [ Negative_active ]; [ Positive_pending ] ] = Pending);
  check bool_t "pending positive over permit is permit" true
    (decide_node [ [ Positive_active ]; [ Positive_pending ] ] = Permit);
  check bool_t "pending negative alone still denies (either way it denies)" true
    (decide_node [ [ Negative_pending ] ] = Deny);
  check bool_t "pending negative over deny is deny" true
    (decide_node [ [ Negative_active ]; [ Negative_pending ] ] = Deny)

(* Oracle ------------------------------------------------------------------ *)

let test_oracle_motivating_semantics () =
  let doc =
    Tree.parse
      "<r><a><b>1</b><secret>x</secret></a><a><b>2</b></a></r>"
  in
  (* permit //a, deny //secret *)
  let policy = policy_of [ (true, xp "//a"); (false, xp "//secret") ] in
  let view = Oracle.authorized_view policy doc in
  check tree_opt_t "secret removed"
    (Some (Tree.parse "<r><a><b>1</b></a><a><b>2</b></a></r>"))
    view

let test_oracle_structural_rule () =
  let doc = Tree.parse "<r><mid><leaf>v</leaf></mid></r>" in
  let policy = policy_of [ (true, xp "//leaf") ] in
  check tree_opt_t "ancestors delivered without their text"
    (Some (Tree.parse "<r><mid><leaf>v</leaf></mid></r>"))
    (Oracle.authorized_view policy doc);
  let doc2 = Tree.parse "<r>t1<mid>t2<leaf>v</leaf></mid></r>" in
  check tree_opt_t "denied ancestors lose their text"
    (Some (Tree.parse "<r><mid><leaf>v</leaf></mid></r>"))
    (Oracle.authorized_view policy doc2)

let test_oracle_dummy_names () =
  let doc = Tree.parse "<r><mid><leaf>v</leaf></mid></r>" in
  let policy = policy_of [ (true, xp "//leaf") ] in
  check tree_opt_t "structural elements dummied"
    (Some (Tree.parse "<X><X><leaf>v</leaf></X></X>"))
    (Oracle.authorized_view ~dummy_denied:"X" policy doc)

let test_oracle_most_specific () =
  let doc = Tree.parse "<r><acts><act><details>d</details><id>1</id></act></acts></r>" in
  let policy =
    policy_of [ (true, xp "//acts"); (false, xp "//act/details") ]
  in
  check tree_opt_t "inner denial carves out subtree"
    (Some (Tree.parse "<r><acts><act><id>1</id></act></acts></r>"))
    (Oracle.authorized_view policy doc)

let test_oracle_deny_then_repermit () =
  let doc = Tree.parse "<r><a><b><c>v</c></b></a></r>" in
  let policy =
    policy_of
      [ (true, xp "/r"); (false, xp "//a"); (true, xp "//a/b/c") ]
  in
  check tree_opt_t "re-permission under denial"
    (Some (Tree.parse "<r><a><b><c>v</c></b></a></r>"))
    (Oracle.authorized_view policy doc)

let test_oracle_empty_when_all_denied () =
  let doc = Tree.parse "<r><a>x</a></r>" in
  check tree_opt_t "closed policy delivers nothing" None
    (Oracle.authorized_view Policy.empty doc);
  let deny_all = policy_of [ (false, xp "//*") ] in
  check tree_opt_t "deny-all delivers nothing" None
    (Oracle.authorized_view deny_all doc)

let test_oracle_query_view () =
  let doc =
    Tree.parse "<r><f><age>10</age><g>a</g></f><f><age>20</age><g>b</g></f></r>"
  in
  let policy = policy_of [ (true, xp "//f") ] in
  let q = xp "//f[age > 15]" in
  check tree_opt_t "query filters folders"
    (Some (Tree.parse "<r><f><age>20</age><g>b</g></f></r>"))
    (Oracle.query_view ~query:q policy doc)

let test_oracle_query_cannot_probe_denied () =
  (* the query predicate names a denied element: it must not match *)
  let doc = Tree.parse "<r><f><secret>1</secret><v>x</v></f></r>" in
  let policy = policy_of [ (true, xp "//f"); (false, xp "//secret") ] in
  let q = xp "//f[secret]" in
  check tree_opt_t "denied element invisible to query predicates" None
    (Oracle.query_view ~query:q policy doc);
  let q2 = xp "//f[v]" in
  check tree_opt_t "authorized sibling visible"
    (Some (Tree.parse "<r><f><v>x</v></f></r>"))
    (Oracle.query_view ~query:q2 policy doc)

(* Streaming evaluator: unit cases ----------------------------------------- *)

let run_stream ?query ?dummy_denied policy doc =
  Evaluator.view_tree
    (Evaluator.run_events ?query ?dummy_denied ~policy (Tree.to_events doc))

let test_input_of_string () =
  (* the lazy-parsing input: same result as pre-parsed events *)
  let xml = "<r><a><b>1</b><secret>x</secret></a></r>" in
  let policy = policy_of [ (true, xp "//a"); (false, xp "//secret") ] in
  let via_string =
    Evaluator.view_tree (Evaluator.run ~policy (Input.of_string xml))
  in
  let via_events = run_stream policy (Tree.parse xml) in
  check tree_opt_t "of_string ≡ of_events"
    via_events via_string

let test_printers_do_not_crash () =
  let policy = policy_of [ (true, xp "//a[b = 1]/c"); (false, xp "//d") ] in
  let rendered = Fmt.str "%a" Policy.pp policy in
  check bool_t "policy printer output non-empty" true (String.length rendered > 10);
  let ara = Ara.compile ~ara_id:0 (Ara.Rule_src (List.hd (Policy.rules policy))) in
  check bool_t "ARA printer output non-empty" true
    (String.length (Fmt.str "%a" Ara.pp ara) > 5)

let test_stream_basic () =
  let doc = Tree.parse "<r><a><b>1</b><secret>x</secret></a></r>" in
  let policy = policy_of [ (true, xp "//a"); (false, xp "//secret") ] in
  check tree_opt_t "basic filtering"
    (Some (Tree.parse "<r><a><b>1</b></a></r>"))
    (run_stream policy doc)

let test_stream_paper_figure3 () =
  (* Figure 3: R: ⊕ //b[c]/d ; S: ⊖ //c on the abstract document *)
  let doc =
    Tree.parse
      "<a><b><d>v1</d><c>v2</c></b><b><d>v3</d><c>v4</c><b><d>v5</d><c>v6</c></b></b></a>"
  in
  let policy = policy_of [ (true, xp "//b[c]/d"); (false, xp "//c") ] in
  (* every b has a c child, so every direct d child of a b is delivered;
     every c is denied *)
  check tree_opt_t "Figure 3 delivery"
    (Some
       (Tree.parse "<a><b><d>v1</d></b><b><d>v3</d><b><d>v5</d></b></b></a>"))
    (run_stream policy doc)

let test_stream_pending_positive () =
  (* predicate appears after the conditioned subtree: d precedes c *)
  let doc = Tree.parse "<a><b><d>keep</d><c>1</c></b><b><d>drop</d></b></a>" in
  let policy = policy_of [ (true, xp "//b[c]/d") ] in
  check tree_opt_t "pending predicate resolved true then false"
    (Some (Tree.parse "<a><b><d>keep</d></b></a>"))
    (run_stream policy doc)

let test_stream_pending_negative () =
  let doc = Tree.parse "<r><b><d>x</d><c>1</c></b><b><d>y</d></b></r>" in
  let policy = policy_of [ (true, xp "//d"); (false, xp "//b[c]/d") ] in
  check tree_opt_t "pending negative rule"
    (Some (Tree.parse "<r><b><d>y</d></b></r>"))
    (run_stream policy doc)

let test_stream_value_predicates () =
  let doc =
    Tree.parse
      "<r><g><chol>200</chol><lab>l1</lab></g><g><chol>300</chol><lab>l2</lab></g></r>"
  in
  let policy = policy_of [ (true, xp "//g[chol > 250]") ] in
  check tree_opt_t "numeric comparison"
    (Some (Tree.parse "<r><g><chol>300</chol><lab>l2</lab></g></r>"))
    (run_stream policy doc)

let test_stream_user_rule () =
  let doc =
    Tree.parse
      "<r><act><phys>house</phys><data>a</data></act><act><phys>wilson</phys><data>b</data></act></r>"
  in
  let policy =
    Policy.resolve_user ~user:"house"
      (Policy.of_specs [ ("D", Rule.Permit, "//act[phys = USER]") ])
  in
  check tree_opt_t "USER-parameterized rule"
    (Some (Tree.parse "<r><act><phys>house</phys><data>a</data></act></r>"))
    (run_stream policy doc)

let test_stream_dummy_denied () =
  let doc = Tree.parse "<r><mid><leaf>v</leaf></mid></r>" in
  let policy = policy_of [ (true, xp "//leaf") ] in
  check tree_opt_t "streaming dummies structural elements"
    (Some (Tree.parse "<X><X><leaf>v</leaf></X></X>"))
    (run_stream ~dummy_denied:"X" policy doc)

let test_stream_rejects_nonlinear () =
  let policy = policy_of [ (true, xp "//a[b[c]]") ] in
  match Evaluator.run_events ~policy [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nested predicate should be rejected"

let test_stream_attributes_pass_through () =
  let doc = Tree.parse "<r><a x=\"1\">t</a></r>" in
  let policy = policy_of [ (true, xp "//a") ] in
  check tree_opt_t "attributes preserved on permitted elements"
    (Some (Tree.parse "<r><a x=\"1\">t</a></r>"))
    (run_stream policy doc)

(* Streaming ≡ oracle ------------------------------------------------------ *)

let gen_case =
  QCheck2.Gen.(pair Testkit.gen_tree Testkit.gen_rules)

let print_case (tree, rules) =
  Printf.sprintf "doc=%s rules=[%s]" (Testkit.tree_print tree)
    (Testkit.rules_print rules)

let equiv_with_input make_input (tree, rules) =
  let policy = policy_of rules in
  let oracle = Oracle.authorized_view policy tree in
  let streaming =
    Evaluator.view_tree (Evaluator.run ~policy (make_input tree))
  in
  (match (oracle, streaming) with
  | None, None -> true
  | Some a, Some b -> Tree.equal a b
  | _ -> false)

let prop_stream_equals_oracle =
  qtest "streaming(events) ≡ oracle" gen_case ~print:print_case
    (equiv_with_input (fun tree -> Input.of_events (Tree.to_events tree)))

let prop_stream_equals_oracle_tcsbr =
  qtest "streaming(TCSBR, skipping) ≡ oracle" gen_case ~print:print_case
    (equiv_with_input (fun tree ->
         Input.of_decoder
           (Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr tree))))

let prop_stream_equals_oracle_tcs =
  qtest ~count:200 "streaming(TCS) ≡ oracle" gen_case ~print:print_case
    (equiv_with_input (fun tree ->
         Input.of_decoder
           (Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcs tree))))

(* The per-level ARA transition memo is a pure lookup-structure
   optimization: deliveries and every stat except its own hit/miss
   counters must be identical with it on and off, on skipping input. *)
let prop_ara_memo_equivalence =
  qtest ~count:50 "ARA memo ≡ unmemoized (events and stats)" gen_case
    ~print:print_case (fun (tree, rules) ->
      let policy = policy_of rules in
      let run memo =
        Evaluator.run ~policy
          ~options:{ Evaluator.default_options with enable_ara_memo = memo }
          (Input.of_decoder
             (Skip.Decoder.of_string
                (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr tree)))
      in
      let a = run true and b = run false in
      let strip (s : Evaluator.stats) =
        { s with Evaluator.ara_memo_hits = 0; ara_memo_misses = 0 }
      in
      a.Evaluator.events = b.Evaluator.events
      && strip a.Evaluator.stats = strip b.Evaluator.stats
      && b.Evaluator.stats.Evaluator.ara_memo_hits = 0
      && b.Evaluator.stats.Evaluator.ara_memo_misses = 0)

let test_ara_memo_hits_on_repetition () =
  (* many same-tag siblings: after the first <rec>, every further open at
     that level must reuse the memoized token sublists *)
  let doc =
    Tree.parse
      ("<r>"
      ^ String.concat ""
          (List.init 20 (fun i ->
               Printf.sprintf "<rec><name>n%d</name><val>%d</val></rec>" i i))
      ^ "</r>")
  in
  let policy = policy_of [ (true, xp "//rec/name") ] in
  let r = Evaluator.run ~policy (Input.of_events (Tree.to_events doc)) in
  check bool_t "memo hits on repeated siblings" true
    (r.Evaluator.stats.Evaluator.ara_memo_hits > 0)

let gen_query_case =
  QCheck2.Gen.(triple Testkit.gen_tree Testkit.gen_rules (Testkit.gen_path ()))

let print_query_case (tree, rules, q) =
  Printf.sprintf "%s query=%s" (print_case (tree, rules)) (Testkit.path_print q)

let equiv_query_with_input make_input (tree, rules, q) =
  let policy = policy_of rules in
  let oracle = Oracle.query_view ~query:q policy tree in
  let streaming =
    Evaluator.view_tree (Evaluator.run ~query:q ~policy (make_input tree))
  in
  (match (oracle, streaming) with
  | None, None -> true
  | Some a, Some b -> Tree.equal a b
  | _ -> false)

let prop_query_equals_oracle =
  qtest "streaming query ≡ oracle query" gen_query_case ~print:print_query_case
    (equiv_query_with_input (fun tree -> Input.of_events (Tree.to_events tree)))

let prop_query_equals_oracle_tcsbr =
  qtest "streaming query(TCSBR) ≡ oracle query" gen_query_case
    ~print:print_query_case
    (equiv_query_with_input (fun tree ->
         Input.of_decoder
           (Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr tree))))

let prop_dummy_equivalence =
  qtest ~count:200 "dummy naming agrees between oracle and streaming" gen_case
    ~print:print_case (fun (tree, rules) ->
      let policy = policy_of rules in
      let oracle = Oracle.authorized_view ~dummy_denied:"XX" policy tree in
      let streaming = run_stream ~dummy_denied:"XX" policy tree in
      match (oracle, streaming) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

let prop_dummy_equivalence_tcsbr =
  qtest ~count:200 "dummy naming with skipping ≡ oracle" gen_case
    ~print:print_case (fun (tree, rules) ->
      let policy = policy_of rules in
      let oracle = Oracle.authorized_view ~dummy_denied:"XX" policy tree in
      let streaming =
        Evaluator.view_tree
          (Evaluator.run ~dummy_denied:"XX" ~policy
             (Input.of_decoder
                (Skip.Decoder.of_string
                   (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr tree))))
      in
      match (oracle, streaming) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

let prop_dummy_query_equivalence =
  qtest ~count:200 "dummy naming with a query ≡ oracle" gen_query_case
    ~print:print_query_case (fun (tree, rules, q) ->
      let policy = policy_of rules in
      let oracle = Oracle.query_view ~dummy_denied:"XX" ~query:q policy tree in
      let streaming =
        Evaluator.view_tree
          (Evaluator.run_events ~dummy_denied:"XX" ~query:q ~policy
             (Tree.to_events tree))
      in
      match (oracle, streaming) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

(* Skipping must only change costs, never results; it must actually occur. *)

let test_skip_stats_fire () =
  let doc =
    Tree.parse
      "<r><keep>k</keep><big><x>1</x><y>2</y><z>3</z></big><keep>k2</keep></r>"
  in
  let policy = policy_of [ (true, xp "//keep") ] in
  let dec =
    Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr doc)
  in
  let result = Evaluator.run ~policy (Input.of_decoder dec) in
  check bool_t "some subtree was skipped" true
    (result.Evaluator.stats.Evaluator.open_skips > 0);
  check tree_opt_t "output unaffected"
    (Some (Tree.parse "<r><keep>k</keep><keep>k2</keep></r>"))
    (Evaluator.view_tree result)

let test_pending_subtree_readback () =
  (* the protocol subtree decides the folder after the lab subtree: lab must
     be skipped pending and read back *)
  let doc =
    Tree.parse
      "<r><f><lab><v1>a</v1><v2>b</v2></lab><proto>G3</proto></f>\
       <f><lab><v1>c</v1></lab><proto>G1</proto></f></r>"
  in
  let policy = policy_of [ (true, xp "//f[proto = 'G3']/lab") ] in
  let dec =
    Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr doc)
  in
  let result = Evaluator.run ~policy (Input.of_decoder dec) in
  check tree_opt_t "pending lab delivered for the G3 folder only"
    (Some (Tree.parse "<r><f><lab><v1>a</v1><v2>b</v2></lab></f></r>"))
    (Evaluator.view_tree result);
  check bool_t "a pending subtree was recorded" true
    (result.Evaluator.stats.Evaluator.pending_subtrees > 0);
  check bool_t "one pending subtree was read back" true
    (result.Evaluator.stats.Evaluator.readback_subtrees > 0)

let test_paper_figure3_snapshot () =
  (* Figure 3's execution on its abstract document (children ordered as the
     event trace shows: left b holds c then d; right b holds d, c, then an
     inner b with d and c). Rules R: ⊕//b[c]/d and S: ⊖//c. We observe the
     Authorization-Stack pushes, predicate satisfactions and per-node
     decisions the figure depicts. *)
  let doc =
    Tree.parse
      "<a><b><c>1</c><d>2</d></b><b><d>3</d><c>4</c><b><d>5</d><c>6</c></b></b></a>"
  in
  let policy = policy_of [ (true, xp "//b[c]/d"); (false, xp "//c") ] in
  let obs = ref [] in
  let result =
    Evaluator.run_events ~policy
      ~observer:(fun o -> obs := o :: !obs)
      (Tree.to_events doc)
  in
  let obs = List.rev !obs in
  (* the delivered view: every b has a c, so every direct d is delivered *)
  check tree_opt_t "Figure 3 deliveries"
    (Some (Tree.parse "<a><b><d>2</d></b><b><d>3</d><b><d>5</d></b></b></a>"))
    (Evaluator.view_tree result);
  let count p = List.length (List.filter p obs) in
  (* S (⊖//c) becomes active at each of the four c elements *)
  check Alcotest.int "three negative-active S instances" 3
    (count (function
      | Evaluator.Obs_instance { rule = "R1"; sign = Rule.Deny; pending; _ } ->
          not pending
      | _ -> false));
  (* R completes at each of the three d elements; at the first (left b) the
     predicate c was already satisfied, at the other two it is pending *)
  check Alcotest.int "one active R instance" 1
    (count (function
      | Evaluator.Obs_instance { rule = "R0"; pending = false; _ } -> true
      | _ -> false));
  check Alcotest.int "two pending R instances (step 16 of the figure)" 2
    (count (function
      | Evaluator.Obs_instance { rule = "R0"; pending = true; _ } -> true
      | _ -> false));
  (* the predicate [c] is satisfied once per b instance (steps 3 and 18) *)
  check Alcotest.int "three predicate satisfactions" 3
    (count (function
      | Evaluator.Obs_predicate_satisfied { rule = "R0"; _ } -> true
      | _ -> false));
  (* decisions: every c is denied on the spot, the first d is permitted
     immediately (step 5), the other two are pending at their open *)
  check Alcotest.int "three immediate denials" 3
    (count (function
      | Evaluator.Obs_decision { tag = "c"; decision = Conflict.Deny; _ } -> true
      | _ -> false));
  check Alcotest.int "one immediate permit on d" 1
    (count (function
      | Evaluator.Obs_decision { tag = "d"; decision = Conflict.Permit; _ } -> true
      | _ -> false));
  check Alcotest.int "two pending d decisions" 2
    (count (function
      | Evaluator.Obs_decision { tag = "d"; decision = Conflict.Pending; _ } -> true
      | _ -> false))

let test_footnote5_rule_instances_not_confused () =
  (* Paper footnote 5: with //b[c]/d, tokens reaching the predicate final
     state and the navigational final state from *different* b instances
     must not combine into one rule instance. *)
  let policy = policy_of [ (true, xp "//b[c]/d") ] in
  (* outer b has the c, inner b has the d: no instance is complete *)
  check tree_opt_t "outer-c + inner-d is no match" None
    (run_stream policy (Tree.parse "<a><b><b><d>x</d></b><c>y</c></b></a>"));
  (* inner b has the c, outer b has the d: still no instance *)
  check tree_opt_t "inner-c + outer-d is no match" None
    (run_stream policy (Tree.parse "<a><b><d>x</d><b><c>y</c></b></b></a>"));
  (* positive control: the outer instance alone is complete *)
  check tree_opt_t "complete outer instance delivers only its own d"
    (Some (Tree.parse "<a><b><d>x</d></b></a>"))
    (run_stream policy
       (Tree.parse "<a><b><d>x</d><c>y</c><b><d>z</d></b></b></a>"));
  (* both instances complete: both ds delivered *)
  check tree_opt_t "nested complete instances"
    (Some (Tree.parse "<a><b><d>x</d><b><d>z</d></b></b></a>"))
    (run_stream policy
       (Tree.parse "<a><b><d>x</d><c>y</c><b><d>z</d><c>w</c></b></b></a>"))

let test_multi_predicate_instances () =
  (* two predicates on one step: both must hold for the same instance
     (paper footnote 6) *)
  let policy = policy_of [ (true, xp "//b[c][e]/d") ] in
  check tree_opt_t "both predicates in the same b"
    (Some (Tree.parse "<a><b><d>x</d></b></a>"))
    (run_stream policy (Tree.parse "<a><b><d>x</d><c>1</c><e>2</e></b></a>"));
  check tree_opt_t "predicates split across instances do not combine" None
    (run_stream policy
       (Tree.parse "<a><b><c>1</c><b><d>x</d><e>2</e></b></b></a>"))

let test_value_predicate_concatenated_text () =
  (* an element's comparison value is its concatenated descendant text *)
  let doc = Tree.parse "<r><a><v><p>1</p><p>2</p></v>keep</a><a><v>3</v>drop</a></r>" in
  let policy = policy_of [ (true, xp "//a[v = 12]") ] in
  check tree_opt_t "concatenation 1^2 = 12 matches"
    (Some (Tree.parse "<r><a><v><p>1</p><p>2</p></v>keep</a></r>"))
    (run_stream policy doc)

let test_same_rule_multiple_instances_same_level () =
  (* one rule matching an element through two different // paths still
     yields a single consistent decision *)
  let doc = Tree.parse "<r><a><a><t>x</t></a></a></r>" in
  let policy = policy_of [ (true, xp "//a//t") ] in
  check tree_opt_t "no duplication of delivered nodes"
    (Some (Tree.parse "<r><a><a><t>x</t></a></a></r>"))
    (run_stream policy doc)

let test_deep_recursive_differential () =
  (* a Treebank-shaped deep recursive document against the oracle *)
  let doc =
    Xmlac_workload.Datasets.generate Xmlac_workload.Datasets.Treebank ~seed:5
      ~target_bytes:20_000
  in
  let policy =
    policy_of
      [
        (true, xp "//NP//S");
        (false, xp "//VP[S]");
        (true, xp "//S/NP[//VP]");
      ]
  in
  let oracle = Oracle.authorized_view policy doc in
  let streaming =
    Evaluator.view_tree
      (Evaluator.run ~policy
         (Input.of_decoder
            (Skip.Decoder.of_string
               (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr doc))))
  in
  let ok =
    match (oracle, streaming) with
    | None, None -> true
    | Some a, Some b -> Tree.equal a b
    | _ -> false
  in
  check bool_t "deep recursion: streaming = oracle" true ok

let test_paper_figure7_walkthrough () =
  (* Figure 7: rules R:+/a[d=4]/c, S:-//c/e[m=3], T:-//c[//i=3]//f,
     U:+//h[k=2] over the abstract document. The narrative the paper gives:
     - the b subtree is skipped outright (TagArray_b stops every rule);
     - inside e, once m=3 makes S negative-active, the rest of e is skipped
       on a closing event;
     - c's delivery pends on [d=4], which arrives last, so parts of c are
       skipped pending and read back at the end. *)
  let doc =
    Tree.parse
      "<a><b><m>1</m><o>1</o><p>1</p></b>\
       <c><e><m>3</m><t>1</t><p>1</p></e>\
       <f><m>1</m><p>1</p></f>\
       <g>1</g>\
       <h><m>1</m><k>2</k><i>3</i></h></c>\
       <d>4</d></a>"
  in
  let policy =
    Policy.make
      [
        Rule.parse ~id:"R" ~sign:Rule.Permit "/a[d = 4]/c";
        Rule.parse ~id:"S" ~sign:Rule.Deny "//c/e[m = 3]";
        Rule.parse ~id:"T" ~sign:Rule.Deny "//c[//i = 3]//f";
        Rule.parse ~id:"U" ~sign:Rule.Permit "//h[k = 2]";
      ]
  in
  let expected =
    Tree.parse "<a><c><g>1</g><h><m>1</m><k>2</k><i>3</i></h></c></a>"
  in
  (* oracle agrees with the narrative *)
  check tree_opt_t "oracle view" (Some expected)
    (Oracle.authorized_view policy doc);
  (* streaming over the skip index: same view, and the narrative's skips *)
  let dec =
    Skip.Decoder.of_string (Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr doc)
  in
  let result = Evaluator.run ~policy (Input.of_decoder dec) in
  check tree_opt_t "streaming view" (Some expected) (Evaluator.view_tree result);
  let s = result.Evaluator.stats in
  check bool_t "some subtree skipped at open (b)" true (s.Evaluator.open_skips > 0);
  check bool_t "a tail skip fired (rest of e after m=3)" true
    (s.Evaluator.rest_skips > 0);
  check bool_t "pending subtrees recorded (inside c, waiting on d=4)" true
    (s.Evaluator.pending_subtrees > 0);
  check bool_t "pending subtrees read back" true
    (s.Evaluator.readback_subtrees > 0)

(* Eager delivery (Section 5) ---------------------------------------------- *)

let test_eager_stream_is_out_of_order_but_complete () =
  (* d's delivery waits for the later c, while its sibling k is delivered
     immediately: k (later in document order) is delivered before d *)
  let doc = Tree.parse "<a><b><d>wait</d><k>now</k><c>1</c></b></a>" in
  let policy = policy_of [ (true, xp "//b[c]/d"); (true, xp "//k") ] in
  let deliveries = ref [] in
  let result =
    Evaluator.run_events ~policy
      ~on_deliver:(fun ~seq events -> deliveries := (seq, events) :: !deliveries)
      (Tree.to_events doc)
  in
  let seqs = List.rev_map fst !deliveries in
  check bool_t "sequence numbers are not monotone (out-of-order delivery)"
    true
    (List.exists2
       (fun a b -> a > b)
       (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
       (List.tl seqs));
  let reassembled =
    List.concat_map snd
      (List.sort (fun (a, _) (b, _) -> compare a b) !deliveries)
  in
  check bool_t "reassembled stream equals the batch result" true
    (List.length reassembled = List.length result.Evaluator.events
    && List.for_all2 Event.equal reassembled result.Evaluator.events)

let test_eager_latency_with_definite_rules () =
  (* a definite permit delivers while the document is still streaming *)
  let doc =
    Tree.parse "<r><a>one</a><a>two</a><a>three</a><a>four</a></r>"
  in
  let policy = policy_of [ (true, xp "//a") ] in
  let result = Evaluator.run_events ~policy (Tree.to_events doc) in
  check bool_t "first delivery almost immediately" true
    (result.Evaluator.stats.Evaluator.first_output_at >= 0
    && result.Evaluator.stats.Evaluator.first_output_at <= 3)

let prop_eager_callback_equals_result =
  qtest ~count:300 "callback deliveries reassemble to the result" gen_case
    ~print:print_case (fun (tree, rules) ->
      let policy = policy_of rules in
      let acc = ref [] in
      let result =
        Evaluator.run_events ~policy
          ~on_deliver:(fun ~seq events -> acc := (seq, events) :: !acc)
          (Tree.to_events tree)
      in
      let reassembled =
        List.concat_map snd (List.sort (fun (a, _) (b, _) -> compare a b) !acc)
      in
      List.length reassembled = List.length result.Evaluator.events
      && List.for_all2 Event.equal reassembled result.Evaluator.events)

(* Ablation switches must never change results, only costs ------------------- *)

let ablation_configs =
  [
    { Evaluator.enable_skipping = false; enable_rest_skips = false; enable_desctag_filter = false; enable_ara_memo = true };
    { Evaluator.enable_skipping = true; enable_rest_skips = false; enable_desctag_filter = false; enable_ara_memo = true };
    { Evaluator.enable_skipping = true; enable_rest_skips = true; enable_desctag_filter = false; enable_ara_memo = true };
    { Evaluator.enable_skipping = true; enable_rest_skips = false; enable_desctag_filter = true; enable_ara_memo = true };
    { Evaluator.default_options with enable_ara_memo = false };
    Evaluator.default_options;
  ]

let prop_options_never_change_output =
  qtest ~count:200 "ablation switches preserve the view" gen_case
    ~print:print_case (fun (tree, rules) ->
      let policy = policy_of rules in
      let encoded = Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr tree in
      let reference =
        Evaluator.run ~policy (Input.of_events (Tree.to_events tree))
      in
      List.for_all
        (fun options ->
          let r =
            Evaluator.run ~options ~policy
              (Input.of_decoder (Skip.Decoder.of_string encoded))
          in
          List.length r.Evaluator.events
          = List.length reference.Evaluator.events
          && List.for_all2 Event.equal r.Evaluator.events
               reference.Evaluator.events)
        ablation_configs)

let test_options_disable_skipping () =
  let doc = Tree.parse "<r><keep>k</keep><big><x>1</x><y>2</y></big></r>" in
  let policy = policy_of [ (true, xp "//keep") ] in
  let encoded = Skip.Encoder.encode ~layout:Skip.Layout.Tcsbr doc in
  let no_skip =
    Evaluator.run
      ~options:
        {
          Evaluator.enable_skipping = false;
          enable_rest_skips = false;
          enable_desctag_filter = false;
          enable_ara_memo = true;
        }
      ~policy
      (Input.of_decoder (Skip.Decoder.of_string encoded))
  in
  check Alcotest.int "no skips happen when disabled" 0
    (no_skip.Evaluator.stats.Evaluator.open_skips
    + no_skip.Evaluator.stats.Evaluator.rest_skips)

(* Policy minimization ------------------------------------------------------ *)

(* Policy textual format ----------------------------------------------------- *)

let test_policy_format_roundtrip () =
  let p =
    Policy.of_specs
      [
        ("D1", Rule.Permit, "//Folder/Admin");
        ("D2", Rule.Permit, "//MedActs[//RPhys = USER]");
        ("D3", Rule.Deny, "//Act[RPhys != USER]/Details");
      ]
  in
  match Policy.of_string (Policy.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      check Alcotest.string "textual roundtrip" (Policy.to_string p)
        (Policy.to_string p')

let test_policy_format_comments_and_blanks () =
  let text = "# a policy\n\nA + //x # trailing comment\n  B  -  //y[z = 'a b']  \n" in
  match Policy.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check Alcotest.int "two rules" 2 (List.length (Policy.rules p));
      check Alcotest.string "quoted value with space survives" "//y[z='a b']"
        (Xmlac_xpath.Parse.to_string (List.nth (Policy.rules p) 1).Rule.path)

let test_policy_format_errors () =
  let bad = [ "A ? //x"; "A +"; "justoneword"; "A + //x[" ; "A + //x\nA - //y" ] in
  List.iter
    (fun text ->
      match Policy.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    bad

let prop_policy_format_roundtrip =
  qtest ~count:200 "random policies roundtrip through text" Testkit.gen_rules
    ~print:Testkit.rules_print (fun rules ->
      let p = policy_of rules in
      match Policy.of_string (Policy.to_string p) with
      | Error _ -> false
      | Ok p' -> Policy.to_string p = Policy.to_string p')

let test_minimize_duplicates () =
  let p =
    Policy.make
      [
        Rule.parse ~id:"A" ~sign:Rule.Permit "//a";
        Rule.parse ~id:"B" ~sign:Rule.Permit "//a";
        Rule.parse ~id:"C" ~sign:Rule.Deny "//b";
      ]
  in
  let p', removed = Policy.minimize p in
  check Alcotest.int "one duplicate removed" 1 (List.length removed);
  check Alcotest.int "two rules left" 2 (List.length (Policy.rules p'))

let test_minimize_containment_without_opposition () =
  let p =
    Policy.make
      [
        Rule.parse ~id:"Wide" ~sign:Rule.Permit "//a";
        Rule.parse ~id:"Narrow" ~sign:Rule.Permit "//b/a";
      ]
  in
  let p', removed = Policy.minimize p in
  check Alcotest.int "narrow rule removed" 1 (List.length removed);
  check Alcotest.int "one rule left" 1 (List.length (Policy.rules p'))

let test_minimize_keeps_when_opposed () =
  (* with an opposite-sign rule around, containment elimination is unsafe *)
  let p =
    Policy.make
      [
        Rule.parse ~id:"Wide" ~sign:Rule.Permit "//a";
        Rule.parse ~id:"Narrow" ~sign:Rule.Permit "//b/a";
        Rule.parse ~id:"Deny" ~sign:Rule.Deny "//b";
      ]
  in
  let _, removed = Policy.minimize p in
  check Alcotest.int "nothing removed" 0 (List.length removed)

let prop_minimize_preserves_semantics =
  qtest ~count:300 "minimize preserves the authorized view"
    (QCheck2.Gen.pair Testkit.gen_tree Testkit.gen_rules)
    ~print:print_case
    (fun (tree, rules) ->
      let policy = policy_of rules in
      let minimized, _ = Policy.minimize policy in
      let a = Oracle.authorized_view policy tree in
      let b = Oracle.authorized_view minimized tree in
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

let () =
  Alcotest.run "core"
    [
      ( "conflict",
        [
          Alcotest.test_case "paper cases" `Quick test_decide_paper_cases;
          prop_decide_equivalence;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "motivating semantics" `Quick test_oracle_motivating_semantics;
          Alcotest.test_case "structural rule" `Quick test_oracle_structural_rule;
          Alcotest.test_case "dummy names" `Quick test_oracle_dummy_names;
          Alcotest.test_case "most specific object" `Quick test_oracle_most_specific;
          Alcotest.test_case "re-permission" `Quick test_oracle_deny_then_repermit;
          Alcotest.test_case "closed policy" `Quick test_oracle_empty_when_all_denied;
          Alcotest.test_case "query view" `Quick test_oracle_query_view;
          Alcotest.test_case "query blind to denied" `Quick test_oracle_query_cannot_probe_denied;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "input from a string" `Quick test_input_of_string;
          Alcotest.test_case "printers" `Quick test_printers_do_not_crash;
          Alcotest.test_case "basic" `Quick test_stream_basic;
          Alcotest.test_case "paper Figure 3" `Quick test_stream_paper_figure3;
          Alcotest.test_case "pending positive" `Quick test_stream_pending_positive;
          Alcotest.test_case "pending negative" `Quick test_stream_pending_negative;
          Alcotest.test_case "value predicates" `Quick test_stream_value_predicates;
          Alcotest.test_case "USER rules" `Quick test_stream_user_rule;
          Alcotest.test_case "dummy names" `Quick test_stream_dummy_denied;
          Alcotest.test_case "nonlinear rejected" `Quick test_stream_rejects_nonlinear;
          Alcotest.test_case "attributes pass through" `Quick test_stream_attributes_pass_through;
          Alcotest.test_case "paper Figure 3 snapshot" `Quick
            test_paper_figure3_snapshot;
          Alcotest.test_case "footnote 5: instances not confused" `Quick
            test_footnote5_rule_instances_not_confused;
          Alcotest.test_case "footnote 6: multi-predicate instances" `Quick
            test_multi_predicate_instances;
          Alcotest.test_case "concatenated text values" `Quick
            test_value_predicate_concatenated_text;
          Alcotest.test_case "duplicate instances, one delivery" `Quick
            test_same_rule_multiple_instances_same_level;
          Alcotest.test_case "deep recursive differential" `Quick
            test_deep_recursive_differential;
        ] );
      ( "differential",
        [
          prop_stream_equals_oracle;
          prop_stream_equals_oracle_tcsbr;
          prop_stream_equals_oracle_tcs;
          prop_ara_memo_equivalence;
          Alcotest.test_case "ARA memo hits on repetition" `Quick
            test_ara_memo_hits_on_repetition;
          prop_query_equals_oracle;
          prop_query_equals_oracle_tcsbr;
          prop_dummy_equivalence;
          prop_dummy_equivalence_tcsbr;
          prop_dummy_query_equivalence;
        ] );
      ( "skipping",
        [
          Alcotest.test_case "skips fire" `Quick test_skip_stats_fire;
          Alcotest.test_case "pending subtree readback" `Quick test_pending_subtree_readback;
          Alcotest.test_case "paper Figure 7 walkthrough" `Quick
            test_paper_figure7_walkthrough;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "out-of-order, complete" `Quick
            test_eager_stream_is_out_of_order_but_complete;
          Alcotest.test_case "low latency on definite rules" `Quick
            test_eager_latency_with_definite_rules;
          prop_eager_callback_equals_result;
        ] );
      ( "ablation",
        [
          prop_options_never_change_output;
          Alcotest.test_case "switch disables skipping" `Quick
            test_options_disable_skipping;
        ] );
      ( "policy-format",
        [
          Alcotest.test_case "roundtrip" `Quick test_policy_format_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick
            test_policy_format_comments_and_blanks;
          Alcotest.test_case "errors rejected" `Quick test_policy_format_errors;
          prop_policy_format_roundtrip;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "duplicates" `Quick test_minimize_duplicates;
          Alcotest.test_case "containment" `Quick test_minimize_containment_without_opposition;
          Alcotest.test_case "opposition blocks" `Quick test_minimize_keeps_when_opposed;
          prop_minimize_preserves_semantics;
        ] );
    ]
