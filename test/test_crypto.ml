(* Tests for the cryptographic substrate: SHA-1 and DES against published
   vectors, mode properties, Merkle trees and the chunked secure container. *)

open Xmlac_crypto

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* SHA-1 ------------------------------------------------------------------ *)

let test_sha1_vectors () =
  let cases =
    [
      ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
      ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
      ( String.make 1000000 'a',
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f" );
    ]
  in
  List.iter
    (fun (msg, expected) ->
      check string_t
        (Printf.sprintf "sha1 of %d bytes" (String.length msg))
        expected
        (Sha1.hex (Sha1.digest msg)))
    cases

let test_sha1_incremental () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let whole = Sha1.digest msg in
  (* feed in uneven pieces *)
  let c = Sha1.init () in
  let rec go pos step =
    if pos < String.length msg then begin
      let len = min step (String.length msg - pos) in
      Sha1.feed_sub c msg ~pos ~len;
      go (pos + len) ((step * 2) + 1)
    end
  in
  go 0 1;
  check string_t "incremental = whole" (Sha1.hex whole) (Sha1.hex (Sha1.finalize c))

let test_sha1_state_roundtrip () =
  let msg = String.init 777 (fun i -> Char.chr ((i * 7) mod 256)) in
  let c = Sha1.init () in
  Sha1.feed_sub c msg ~pos:0 ~len:300;
  let state = Sha1.export_state c in
  let c' = Sha1.import_state state in
  Sha1.feed_sub c' msg ~pos:300 ~len:477;
  check string_t "resumed from exported state" (Sha1.hex (Sha1.digest msg))
    (Sha1.hex (Sha1.finalize c'))

let test_sha1_finalize_idempotent () =
  let c = Sha1.init () in
  Sha1.feed c "hello";
  let d1 = Sha1.finalize c in
  Sha1.feed c " world";
  let d2 = Sha1.finalize c in
  check string_t "finalize leaves ctx usable" (Sha1.hex (Sha1.digest "hello")) (Sha1.hex d1);
  check string_t "continued feeding works" (Sha1.hex (Sha1.digest "hello world")) (Sha1.hex d2)

let test_sha1_import_rejects_garbage () =
  Alcotest.check_raises "truncated" (Invalid_argument "Sha1.import_state: truncated")
    (fun () -> ignore (Sha1.import_state "short"));
  let c = Sha1.init () in
  Sha1.feed c "x";
  let s = Sha1.export_state c in
  Alcotest.check_raises "padded" (Invalid_argument "Sha1.import_state: malformed")
    (fun () -> ignore (Sha1.import_state (s ^ "junk")))

(* SHA-256 ---------------------------------------------------------------- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1000000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (msg, expected) ->
      check string_t
        (Printf.sprintf "sha256 of %d bytes" (String.length msg))
        expected
        (Sha256.hex (Sha256.digest msg)))
    cases

let test_sha256_incremental () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let c = Sha256.init () in
  let rec go pos step =
    if pos < String.length msg then begin
      let len = min step (String.length msg - pos) in
      Sha256.feed_sub c msg ~pos ~len;
      go (pos + len) ((step * 2) + 1)
    end
  in
  go 0 1;
  check string_t "incremental = whole" (Sha256.hex (Sha256.digest msg))
    (Sha256.hex (Sha256.finalize c));
  (* finalize works on a copy: the context keeps accepting input *)
  Sha256.feed c "!";
  check string_t "context survives finalize"
    (Sha256.hex (Sha256.digest (msg ^ "!")))
    (Sha256.hex (Sha256.finalize c))

(* Both hashes expose an allocation-free [digest_into]; it must write the
   exact digest and nothing outside [dst_pos, dst_pos + size). *)
let digest_into_agrees name size digest digest_into =
  qtest ~count:200 (name ^ ".digest_into ≡ digest")
    QCheck2.Gen.(pair (string_size (int_range 0 300)) (int_range 0 5))
    (fun (msg, off) ->
      let dst = Bytes.make (off + size + 3) '\xAA' in
      digest_into msg ~dst ~dst_pos:off;
      Bytes.sub_string dst off size = digest msg
      && Bytes.sub_string dst 0 off = String.make off '\xAA'
      && Bytes.sub_string dst (off + size) 3 = String.make 3 '\xAA')

let test_digest_into_bounds_checked () =
  let rejected f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool_t "sha1 overrun rejected" true
    (rejected (fun () -> Sha1.digest_into "msg" ~dst:(Bytes.create 19) ~dst_pos:0));
  check bool_t "sha256 overrun rejected" true
    (rejected (fun () -> Sha256.digest_into "msg" ~dst:(Bytes.create 40) ~dst_pos:9));
  check bool_t "negative position rejected" true
    (rejected (fun () -> Sha256.digest_into "msg" ~dst:(Bytes.create 40) ~dst_pos:(-1)))

(* DES -------------------------------------------------------------------- *)

let hex64 = Printf.sprintf "%016Lx"

let test_des_vectors () =
  (* (key, plaintext, ciphertext) triples from FIPS validation suites *)
  let cases =
    [
      ("\x13\x34\x57\x79\x9B\xBC\xDF\xF1", 0x0123456789ABCDEFL, 0x85E813540F0AB405L);
      ("\x01\x01\x01\x01\x01\x01\x01\x01", 0x0000000000000000L, 0x8CA64DE9C1B123A7L);
      ("\xFE\xFE\xFE\xFE\xFE\xFE\xFE\xFE", 0xFFFFFFFFFFFFFFFFL, 0x7359B2163E4EDC58L);
      ("\x30\x00\x00\x00\x00\x00\x00\x00", 0x1000000000000001L, 0x958E6E627A05557BL);
      ("\x01\x23\x45\x67\x89\xAB\xCD\xEF", 0x1111111111111111L, 0x17668DFC7292532DL);
      ("\xFE\xDC\xBA\x98\x76\x54\x32\x10", 0x0123456789ABCDEFL, 0xED39D950FA74BCC4L);
    ]
  in
  List.iter
    (fun (kb, pt, expected) ->
      let k = Des.key_of_string kb in
      check string_t "encrypt" (hex64 expected) (hex64 (Des.encrypt_block k pt));
      check string_t "decrypt" (hex64 pt) (hex64 (Des.decrypt_block k expected)))
    cases

let test_triple_des_degenerates_to_des () =
  let kb = "\x13\x34\x57\x79\x9B\xBC\xDF\xF1" in
  let k1 = Des.key_of_string kb in
  let k3 = Des.Triple.key_of_string kb in
  let pt = 0xDEADBEEF01234567L in
  check string_t "EDE with equal keys = single DES"
    (hex64 (Des.encrypt_block k1 pt))
    (hex64 (Des.Triple.encrypt_block k3 pt))

let test_triple_des_two_key_form () =
  let k16 = "\x01\x23\x45\x67\x89\xAB\xCD\xEF\xFE\xDC\xBA\x98\x76\x54\x32\x10" in
  let k24 = k16 ^ String.sub k16 0 8 in
  let a = Des.Triple.key_of_string k16 in
  let b = Des.Triple.key_of_string k24 in
  let pt = 0x0011223344556677L in
  check string_t "16-byte key = k1k2k1"
    (hex64 (Des.Triple.encrypt_block b pt))
    (hex64 (Des.Triple.encrypt_block a pt))

let test_key_length_checked () =
  Alcotest.check_raises "des key" (Invalid_argument "Des.key_of_string: need 8 bytes")
    (fun () -> ignore (Des.key_of_string "short"));
  Alcotest.check_raises "3des key"
    (Invalid_argument "Des.Triple.key_of_string: need 8, 16 or 24 bytes")
    (fun () -> ignore (Des.Triple.key_of_string "123456789"))

let des_complementation =
  qtest "DES complementation property"
    QCheck2.Gen.(pair (string_size (return 8)) int64)
    (fun (kb, pt) ->
      let complement s = String.map (fun c -> Char.chr (lnot (Char.code c) land 0xFF)) s in
      let k = Des.key_of_string kb in
      let kc = Des.key_of_string (complement kb) in
      Int64.lognot (Des.encrypt_block k pt) = Des.encrypt_block kc (Int64.lognot pt))

let des_roundtrip =
  qtest "DES decrypt ∘ encrypt = id" QCheck2.Gen.(pair (string_size (return 8)) int64)
    (fun (kb, pt) ->
      let k = Des.key_of_string kb in
      Des.decrypt_block k (Des.encrypt_block k pt) = pt)

let triple_roundtrip =
  qtest "3DES decrypt ∘ encrypt = id"
    QCheck2.Gen.(pair (string_size (return 24)) int64)
    (fun (kb, pt) ->
      let k = Des.Triple.key_of_string kb in
      Des.Triple.decrypt_block k (Des.Triple.encrypt_block k pt) = pt)

(* Modes ------------------------------------------------------------------ *)

let test_key () = Des.Triple.key_of_string "0123456789abcdefFEDCBA98"

let aligned_string =
  QCheck2.Gen.(
    map
      (fun (n, seed) ->
        String.init (8 * (1 + (abs n mod 64))) (fun i -> Char.chr ((seed + (i * 31)) mod 256)))
      (pair small_int small_int))

let mode_roundtrips =
  [
    qtest "ECB roundtrip" aligned_string (fun s ->
        let c = Modes.of_triple_des (test_key ()) in
        Modes.ecb_decrypt c (Modes.ecb_encrypt c s) = s);
    qtest "CBC roundtrip" aligned_string (fun s ->
        let c = Modes.of_triple_des (test_key ()) in
        Modes.cbc_decrypt c ~iv:42L (Modes.cbc_encrypt c ~iv:42L s) = s);
    qtest "positional roundtrip" aligned_string (fun s ->
        let c = Modes.of_triple_des (test_key ()) in
        Modes.positional_decrypt c ~base:4096 (Modes.positional_encrypt c ~base:4096 s) = s);
  ]

(* The in-place [_into] variants must agree with their allocating
   counterparts on every aligned slice, and must not touch the destination
   outside [dst_pos, dst_pos + len). *)
let aligned_slice =
  QCheck2.Gen.(
    aligned_string >>= fun ct ->
    let blocks = String.length ct / 8 in
    int_range 0 (blocks - 1) >>= fun b0 ->
    int_range 1 (blocks - b0) >>= fun nb ->
    int_range 0 3 >>= fun dst_off -> return (ct, 8 * b0, 8 * nb, dst_off))

let into_agrees name decrypt_into reference =
  qtest ~count:300 name aligned_slice (fun (ct, pos, len, dst_off) ->
      let dst = Bytes.make (dst_off + len + 5) '\xAA' in
      decrypt_into ~src:ct ~src_pos:pos ~dst ~dst_pos:dst_off ~len;
      Bytes.sub_string dst dst_off len = String.sub (reference ct) pos len
      && Bytes.sub_string dst 0 dst_off = String.make dst_off '\xAA'
      && Bytes.sub_string dst (dst_off + len) 5 = String.make 5 '\xAA')

(* Run the slice-equivalence property on both engines: with the fast
   cipher, slices of >= 16 blocks route through the bitsliced kernel at
   arbitrary src/dst offsets, the reference decrypts stay scalar, and the
   two must still agree bit-for-bit. *)
let mode_into_equivalence =
  List.concat_map
    (fun (tag, c) ->
      let reference = Modes.of_triple_des (test_key ()) in
      [
        into_agrees (tag ^ " ecb_decrypt_into ≡ ecb_decrypt slice")
          (Modes.ecb_decrypt_into c)
          (Modes.ecb_decrypt reference);
        into_agrees (tag ^ " cbc_decrypt_into ≡ cbc_decrypt slice")
          (Modes.cbc_decrypt_into c ~iv:42L)
          (Modes.cbc_decrypt reference ~iv:42L);
        into_agrees (tag ^ " positional_decrypt_into ≡ positional_decrypt slice")
          (fun ~src ~src_pos ~dst ~dst_pos ~len ->
            Modes.positional_decrypt_into c ~base:(4096 + src_pos) ~src ~src_pos
              ~dst ~dst_pos ~len)
          (Modes.positional_decrypt reference ~base:4096);
      ])
    [
      ("reference", Modes.of_triple_des (test_key ()));
      ("fast", Modes.of_triple_des_fast (test_key ()));
    ]

let test_into_rejects_misuse () =
  let c = Modes.of_triple_des (test_key ()) in
  let ct = String.make 32 '\x5C' in
  let rejected f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool_t "unaligned length rejected" true
    (rejected (fun () ->
         Modes.ecb_decrypt_into c ~src:ct ~src_pos:0 ~dst:(Bytes.create 32)
           ~dst_pos:0 ~len:7));
  check bool_t "source overrun rejected" true
    (rejected (fun () ->
         Modes.ecb_decrypt_into c ~src:ct ~src_pos:16 ~dst:(Bytes.create 64)
           ~dst_pos:0 ~len:24));
  check bool_t "destination overrun rejected" true
    (rejected (fun () ->
         Modes.ecb_decrypt_into c ~src:ct ~src_pos:0 ~dst:(Bytes.create 8)
           ~dst_pos:0 ~len:16));
  check bool_t "unaligned CBC slice start rejected" true
    (rejected (fun () ->
         Modes.cbc_decrypt_into c ~iv:0L ~src:ct ~src_pos:4
           ~dst:(Bytes.create 32) ~dst_pos:0 ~len:8))

let test_into_zero_length () =
  (* len = 0 is a valid no-op on every mode and both engines *)
  List.iter
    (fun c ->
      let dst = Bytes.make 16 '\xAA' in
      let src = String.make 32 '\x5C' in
      Modes.ecb_decrypt_into c ~src ~src_pos:8 ~dst ~dst_pos:4 ~len:0;
      Modes.cbc_decrypt_into c ~iv:7L ~src ~src_pos:8 ~dst ~dst_pos:4 ~len:0;
      Modes.positional_decrypt_into c ~base:64 ~src ~src_pos:8 ~dst ~dst_pos:4
        ~len:0;
      check string_t "destination untouched" (String.make 16 '\xAA')
        (Bytes.to_string dst))
    [ Modes.of_triple_des (test_key ()); Modes.of_triple_des_fast (test_key ()) ]

let test_into_rejects_aliasing () =
  (* a Bytes.t smuggled in as the source must be rejected: the batched
     kernel reads [src] after writing [dst] *)
  List.iter
    (fun c ->
      let buf = Bytes.make 256 '\x51' in
      let aliased = Bytes.unsafe_to_string buf in
      let rejected f = match f () with
        | () -> false
        | exception Invalid_argument _ -> true
      in
      check bool_t "ecb aliasing rejected" true
        (rejected (fun () ->
             Modes.ecb_decrypt_into c ~src:aliased ~src_pos:0 ~dst:buf
               ~dst_pos:0 ~len:256));
      check bool_t "cbc aliasing rejected" true
        (rejected (fun () ->
             Modes.cbc_decrypt_into c ~iv:0L ~src:aliased ~src_pos:0 ~dst:buf
               ~dst_pos:0 ~len:256));
      check bool_t "positional aliasing rejected" true
        (rejected (fun () ->
             Modes.positional_decrypt_into c ~base:0 ~src:aliased ~src_pos:0
               ~dst:buf ~dst_pos:0 ~len:256)))
    [ Modes.of_triple_des (test_key ()); Modes.of_triple_des_fast (test_key ()) ]

let test_positional_into_rejects_unaligned_base () =
  let c = Modes.of_triple_des_fast (test_key ()) in
  match
    Modes.positional_decrypt_into c ~base:4 ~src:(String.make 16 'x')
      ~src_pos:0 ~dst:(Bytes.create 16) ~dst_pos:0 ~len:16
  with
  | () -> Alcotest.fail "unaligned base accepted"
  | exception Invalid_argument _ -> ()

(* Bitsliced DES ≡ scalar reference ---------------------------------------- *)

(* The raw kernel, across run lengths straddling the batch threshold (16)
   and the 63-block lane width: partial lanes, exactly-full passes, and
   multi-pass runs with scalar tails. *)
let test_bitslice_kernel_differential () =
  let key = test_key () in
  let sched = Bitslice_des.decrypt_schedule key in
  let reference = Modes.of_triple_des key in
  let src = String.init (8 * 260) (fun i -> Char.chr ((i * 89 + 3) mod 256)) in
  List.iter
    (fun nblocks ->
      List.iter
        (fun b0 ->
          if 8 * (b0 + nblocks) <= String.length src then begin
            let dst = Bytes.make ((8 * nblocks) + 4) '\xEE' in
            Bitslice_des.decrypt_blocks sched ~src ~src_pos:(8 * b0) ~dst
              ~dst_pos:0 ~nblocks;
            let expected =
              Modes.ecb_decrypt reference (String.sub src (8 * b0) (8 * nblocks))
            in
            check string_t
              (Printf.sprintf "bitslice = scalar (%d blocks at %d)" nblocks b0)
              expected
              (Bytes.sub_string dst 0 (8 * nblocks));
            check string_t "no overwrite past the run" "\xEE\xEE\xEE\xEE"
              (Bytes.sub_string dst (8 * nblocks) 4)
          end)
        [ 0; 1; 3 ])
    [ 1; 2; 15; 16; 17; 62; 63; 64; 126; 127; 128; 256 ]

let test_bitslice_kernel_bounds_checked () =
  let sched = Bitslice_des.decrypt_schedule (test_key ()) in
  let rejected f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool_t "source overrun rejected" true
    (rejected (fun () ->
         Bitslice_des.decrypt_blocks sched ~src:(String.make 64 'x') ~src_pos:8
           ~dst:(Bytes.create 64) ~dst_pos:0 ~nblocks:8));
  check bool_t "destination overrun rejected" true
    (rejected (fun () ->
         Bitslice_des.decrypt_blocks sched ~src:(String.make 64 'x') ~src_pos:0
           ~dst:(Bytes.create 63) ~dst_pos:0 ~nblocks:8))

(* The fast cipher must be byte-for-byte the reference cipher through every
   mode, on buffers long enough to cross into the batched kernel. *)
let long_aligned_string =
  QCheck2.Gen.(
    map
      (fun (n, seed) ->
        String.init
          (8 * (1 + (abs n mod 200)))
          (fun i -> Char.chr ((seed + (i * 31)) mod 256)))
      (pair small_int small_int))

let fast_engine_differential =
  let reference = Modes.of_triple_des (test_key ()) in
  let fast = Modes.of_triple_des_fast (test_key ()) in
  [
    qtest ~count:300 "fast ECB decrypt ≡ reference" long_aligned_string
      (fun s -> Modes.ecb_decrypt fast s = Modes.ecb_decrypt reference s);
    qtest ~count:300 "fast CBC decrypt ≡ reference" long_aligned_string
      (fun s ->
        Modes.cbc_decrypt fast ~iv:42L s = Modes.cbc_decrypt reference ~iv:42L s);
    qtest ~count:300 "fast positional decrypt ≡ reference" long_aligned_string
      (fun s ->
        Modes.positional_decrypt fast ~base:4096 s
        = Modes.positional_decrypt reference ~base:4096 s);
    qtest ~count:300 "fast positional roundtrip" long_aligned_string (fun s ->
        Modes.positional_decrypt fast ~base:0
          (Modes.positional_encrypt fast ~base:0 s)
        = s);
  ]

let test_ecb_leaks_equal_blocks () =
  let c = Modes.of_triple_des (test_key ()) in
  let s = String.make 16 'A' in
  let e = Modes.ecb_encrypt c s in
  check bool_t "equal blocks leak under plain ECB" true
    (String.sub e 0 8 = String.sub e 8 8)

let test_positional_hides_equal_blocks () =
  let c = Modes.of_triple_des (test_key ()) in
  let s = String.make 16 'A' in
  let e = Modes.positional_encrypt c ~base:0 s in
  check bool_t "equal blocks differ under positional ECB" false
    (String.sub e 0 8 = String.sub e 8 8)

let test_positional_random_access () =
  let c = Modes.of_triple_des (test_key ()) in
  let s = String.init 256 (fun i -> Char.chr (i mod 256)) in
  let e = Modes.positional_encrypt c ~base:1024 s in
  let part = Modes.positional_decrypt_sub c ~base:1024 e ~pos:64 ~len:32 in
  check string_t "random access decrypts the right window" (String.sub s 64 32) part

let test_pad_unpad () =
  for n = 0 to 20 do
    let s = String.init n (fun i -> Char.chr (i + 65)) in
    let p = Modes.pad s in
    check int_t "padded length multiple of 8" 0 (String.length p mod 8);
    check bool_t "padding grows" true (String.length p > n);
    check string_t "unpad inverts pad" s (Modes.unpad p)
  done

let test_unpad_rejects_garbage () =
  Alcotest.check_raises "bad length" (Invalid_argument "Modes.unpad: bad length")
    (fun () -> ignore (Modes.unpad "1234567"));
  Alcotest.check_raises "no marker" (Invalid_argument "Modes.unpad: no padding marker")
    (fun () -> ignore (Modes.unpad (String.make 8 '\000')))

(* AES-128 / CTR ------------------------------------------------------------ *)

let aes_key_bytes = String.init 16 Char.chr
let aes_nonce = "\x01\x02\x03\x04\x05\x06\x07\x08"

let test_aes_fips197_vector () =
  (* FIPS-197 Appendix C.1 *)
  let key = Aes.expand aes_key_bytes in
  let pt = String.init 16 (fun i -> Char.chr ((i * 0x11) land 0xFF)) in
  check string_t "AES-128 known answer" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Sha256.hex (Aes.encrypt_block key pt))

let test_aes_key_length_checked () =
  Alcotest.check_raises "15-byte key"
    (Invalid_argument "Aes.expand: need a 16-byte key")
    (fun () -> ignore (Aes.expand (String.make 15 'k')))

let aes_ctr_involution =
  qtest ~count:300 "AES-CTR transform is an involution"
    QCheck2.Gen.(
      triple (string_size (int_range 0 200)) (string_size (return 8))
        (int_range 0 100_000))
    (fun (msg, nonce, stream_pos) ->
      let k = Aes.expand aes_key_bytes in
      Aes.ctr_transform k ~nonce ~stream_pos
        (Aes.ctr_transform k ~nonce ~stream_pos msg)
      = msg)

(* Byte-granular random access: decrypting any sub-range with the right
   absolute stream position must match the same bytes of a whole-stream
   transform — including ranges that start mid-counter-block. *)
let aes_ctr_random_access =
  qtest ~count:300 "AES-CTR slice ≡ whole-stream slice"
    QCheck2.Gen.(
      string_size (int_range 1 300) >>= fun msg ->
      int_range 0 (String.length msg - 1) >>= fun pos ->
      int_range 1 (String.length msg - pos) >>= fun len ->
      int_range 0 10_000 >>= fun stream_pos -> return (msg, pos, len, stream_pos))
    (fun (msg, pos, len, stream_pos) ->
      let k = Aes.expand aes_key_bytes in
      let whole = Aes.ctr_transform k ~nonce:aes_nonce ~stream_pos msg in
      let dst = Bytes.make (len + 4) '\xAA' in
      Aes.ctr_xor_into k ~nonce:aes_nonce ~src:msg ~src_pos:pos ~dst ~dst_pos:0
        ~len ~stream_pos:(stream_pos + pos);
      Bytes.sub_string dst 0 len = String.sub whole pos len
      && Bytes.sub_string dst len 4 = String.make 4 '\xAA')

let test_aes_ctr_rejects_misuse () =
  let k = Aes.expand aes_key_bytes in
  let rejected f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check bool_t "7-byte nonce rejected" true
    (rejected (fun () ->
         Aes.ctr_xor_into k ~nonce:"1234567" ~src:"01234567" ~src_pos:0
           ~dst:(Bytes.create 8) ~dst_pos:0 ~len:8 ~stream_pos:0));
  check bool_t "source overrun rejected" true
    (rejected (fun () ->
         Aes.ctr_xor_into k ~nonce:aes_nonce ~src:"0123" ~src_pos:0
           ~dst:(Bytes.create 8) ~dst_pos:0 ~len:8 ~stream_pos:0));
  check bool_t "destination overrun rejected" true
    (rejected (fun () ->
         Aes.ctr_xor_into k ~nonce:aes_nonce ~src:"01234567" ~src_pos:0
           ~dst:(Bytes.create 4) ~dst_pos:0 ~len:8 ~stream_pos:0))

(* Merkle ----------------------------------------------------------------- *)

let leaves n = Array.init n (fun i -> Sha1.digest (Printf.sprintf "leaf-%d" i))

let test_merkle_root_deterministic () =
  let l = leaves 8 in
  check string_t "same leaves, same root"
    (Sha1.hex (Merkle.root_of_leaves l))
    (Sha1.hex (Merkle.root_of_leaves (Array.copy l)))

let test_merkle_rejects_non_power_of_two () =
  Alcotest.check_raises "n=3"
    (Invalid_argument "Merkle.root_of_leaves: leaf count must be a power of two")
    (fun () -> ignore (Merkle.root_of_leaves (leaves 3)))

let test_merkle_single_leaf () =
  let l = leaves 1 in
  check string_t "root of one leaf is the leaf" (Sha1.hex l.(0))
    (Sha1.hex (Merkle.root_of_leaves l))

let test_merkle_cover_matches_paper_figure () =
  (* Figure F1: SOE reads fragment F3 (index 2) among 8; terminal sends
     H4, H12, H5678. *)
  let cover = Merkle.sibling_cover ~leaf_count:8 ~lo:2 ~hi:2 in
  let expected = [ { Merkle.level = 0; index = 3 }; { level = 1; index = 0 }; { level = 2; index = 1 } ] in
  check bool_t "cover = {H4, H12, H5678}" true
    (List.sort compare cover = List.sort compare expected)

let test_merkle_cover_verifies () =
  let l = leaves 16 in
  let root = Merkle.root_of_leaves l in
  for lo = 0 to 15 do
    for hi = lo to 15 do
      let cover = Merkle.sibling_cover ~leaf_count:16 ~lo ~hi in
      let supplied = List.map (fun n -> (n, Merkle.node_hash l n)) cover in
      let known =
        List.init (hi - lo + 1) (fun i -> (lo + i, l.(lo + i)))
      in
      match Merkle.root_from_cover ~leaf_count:16 ~known ~supplied with
      | None -> Alcotest.failf "incomplete cover for [%d,%d]" lo hi
      | Some r ->
          if not (String.equal r root) then
            Alcotest.failf "wrong root for [%d,%d]" lo hi
    done
  done

let test_merkle_detects_wrong_leaf () =
  let l = leaves 8 in
  let root = Merkle.root_of_leaves l in
  let cover = Merkle.sibling_cover ~leaf_count:8 ~lo:2 ~hi:2 in
  let supplied = List.map (fun n -> (n, Merkle.node_hash l n)) cover in
  let forged = Sha1.digest "forged" in
  match Merkle.root_from_cover ~leaf_count:8 ~known:[ (2, forged) ] ~supplied with
  | None -> Alcotest.fail "cover should be complete"
  | Some r -> check bool_t "forged leaf changes root" false (String.equal r root)

let merkle_cover_minimal =
  qtest ~count:100 "cover size is logarithmic"
    QCheck2.Gen.(pair (int_range 0 31) (int_range 0 31))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let cover = Merkle.sibling_cover ~leaf_count:32 ~lo ~hi in
      List.length cover <= 2 * 5)

(* Secure container ------------------------------------------------------- *)

let payload n = String.init n (fun i -> Char.chr ((i * 131 + 7) mod 256))

let container_roundtrip scheme () =
  let key = test_key () in
  List.iter
    (fun n ->
      let p = payload n in
      let t = Secure_container.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme ~key p in
      check string_t
        (Printf.sprintf "%s roundtrip %dB" (Secure_container.scheme_to_string scheme) n)
        p
        (Secure_container.decrypt_all t ~key ~verify:(scheme <> Secure_container.Ecb)))
    [ 0; 1; 63; 512; 513; 5000 ]

let container_serialization scheme () =
  let key = test_key () in
  let p = payload 3000 in
  let t = Secure_container.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme ~key p in
  let bytes = Secure_container.to_bytes t in
  let t' = Secure_container.of_bytes bytes in
  check string_t "payload survives serialization" p
    (Secure_container.decrypt_all t' ~key ~verify:(scheme <> Secure_container.Ecb))

let tamper_detected scheme () =
  let key = test_key () in
  let p = payload 3000 in
  let t = Secure_container.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme ~key p in
  let t' = Secure_container.substitute_block t ~chunk:2 ~block:5 (String.make 8 'X') in
  match Secure_container.decrypt_all t' ~key ~verify:true with
  | exception Secure_container.Integrity_failure _ -> ()
  | _ -> Alcotest.fail "tampering not detected"

let test_block_substitution_across_chunks_detected () =
  (* swap identical positions between chunks: digests embed the chunk index
     so this must fail even though each block is a valid ciphertext *)
  let key = test_key () in
  let p = payload 3000 in
  let t =
    Secure_container.encrypt ~chunk_size:512 ~fragment_size:64
      ~scheme:Secure_container.Ecb_mht ~key p
  in
  let stolen = String.sub (Secure_container.chunk_ciphertext t 0) 0 8 in
  let t' = Secure_container.substitute_block t ~chunk:1 ~block:0 stolen in
  match Secure_container.decrypt_all t' ~key ~verify:true with
  | exception Secure_container.Integrity_failure _ -> ()
  | _ -> Alcotest.fail "cross-chunk substitution not detected"

let test_ecb_scheme_has_no_integrity () =
  let key = test_key () in
  let p = payload 1000 in
  let t =
    Secure_container.encrypt ~chunk_size:512 ~fragment_size:64
      ~scheme:Secure_container.Ecb ~key p
  in
  let t' = Secure_container.substitute_block t ~chunk:0 ~block:0 (String.make 8 'X') in
  (* decrypts to garbage but does not raise: the baseline is not tamper-proof *)
  let out = Secure_container.decrypt_all t' ~key ~verify:true in
  check bool_t "silently corrupted" false (String.equal out p)

let test_container_header_checks () =
  Alcotest.check_raises "bad magic"
    (Secure_container.Corrupt "bad magic")
    (fun () -> ignore (Secure_container.of_bytes (String.make 64 'z')));
  let key = test_key () in
  let t =
    Secure_container.encrypt ~scheme:Secure_container.Ecb_mht ~key (payload 100)
  in
  let b = Secure_container.to_bytes t in
  Alcotest.check_raises "truncated body"
    (Secure_container.Corrupt "bad total length")
    (fun () -> ignore (Secure_container.of_bytes (String.sub b 0 (String.length b - 1))));
  (match Secure_container.of_bytes_result (String.make 64 'z') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_bytes_result accepted garbage")

let test_fragment_random_access () =
  let key = test_key () in
  let p = payload 4096 in
  let t =
    Secure_container.encrypt ~chunk_size:1024 ~fragment_size:128
      ~scheme:Secure_container.Ecb_mht ~key p
  in
  let cipher = Secure_container.fragment_ciphertext t ~chunk:2 ~fragment:3 in
  let plain = Secure_container.decrypt_fragment t ~key ~chunk:2 ~fragment:3 ~cipher in
  check string_t "fragment decrypts to the right window"
    (String.sub p ((2 * 1024) + (3 * 128)) 128)
    plain

let test_invalid_geometry_rejected () =
  let key = test_key () in
  Alcotest.check_raises "ratio not a power of two"
    (Invalid_argument
       "Secure_container.encrypt: chunk/fragment ratio must be a power of two")
    (fun () ->
      ignore
        (Secure_container.encrypt ~chunk_size:768 ~fragment_size:256
           ~scheme:Secure_container.Ecb_mht ~key "x"))

let scheme_suites =
  List.concat_map
    (fun scheme ->
      let name = Secure_container.scheme_to_string scheme in
      [
        Alcotest.test_case (name ^ " roundtrip") `Quick (container_roundtrip scheme);
        Alcotest.test_case (name ^ " serialization") `Quick (container_serialization scheme);
      ])
    Secure_container.all_schemes
  @ List.filter_map
      (fun scheme ->
        if scheme = Secure_container.Ecb then None
        else
          Some
            (Alcotest.test_case
               (Secure_container.scheme_to_string scheme ^ " tamper detection")
               `Quick (tamper_detected scheme)))
      Secure_container.all_schemes

(* Fuzz: no silent corruption ----------------------------------------------- *)

let prop_any_corruption_detected =
  (* For every integrity-checked scheme: flipping any single byte anywhere
     in the serialized container either fails parsing, fails verification,
     or — if it only hit padding — still yields the exact payload. It must
     never yield a different payload. *)
  qtest ~count:300 "single-byte corruption never silently alters the payload"
    QCheck2.Gen.(
      triple
        (oneofl
           [
             Secure_container.Cbc_sha;
             Secure_container.Cbc_shac;
             Secure_container.Ecb_mht;
             Secure_container.Aes_ctr;
           ])
        (int_range 0 100_000) (int_range 1 255))
    (fun (scheme, pos_seed, delta) ->
      let key = test_key () in
      let p = payload 2600 in
      let t = Secure_container.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme ~key p in
      let raw = Secure_container.to_bytes t in
      let pos = pos_seed mod String.length raw in
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xFF));
      match Secure_container.of_bytes (Bytes.to_string b) with
      | exception Secure_container.Corrupt _ -> true
      | t' -> (
          match Secure_container.decrypt_all t' ~key ~verify:true with
          | exception Secure_container.Integrity_failure _ -> true
          | out -> String.equal out p))

let prop_wrong_key_never_succeeds_quietly =
  qtest ~count:100 "wrong key yields an integrity failure or garbage, never the payload"
    QCheck2.Gen.(string_size (return 24))
    (fun other_key_bytes ->
      let key = test_key () in
      let other = Des.Triple.key_of_string other_key_bytes in
      let p = payload 1500 in
      let t =
        Secure_container.encrypt ~chunk_size:512 ~fragment_size:64
          ~scheme:Secure_container.Ecb_mht ~key p
      in
      match Secure_container.decrypt_all t ~key:other ~verify:true with
      | exception Secure_container.Integrity_failure _ -> true
      | out -> not (String.equal out p))

let () =
  Alcotest.run "crypto"
    [
      ( "sha1",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "incremental feeding" `Quick test_sha1_incremental;
          Alcotest.test_case "state export/import" `Quick test_sha1_state_roundtrip;
          Alcotest.test_case "finalize is non-destructive" `Quick test_sha1_finalize_idempotent;
          Alcotest.test_case "import rejects garbage" `Quick test_sha1_import_rejects_garbage;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental feeding" `Quick test_sha256_incremental;
          digest_into_agrees "sha1" 20 Sha1.digest Sha1.digest_into;
          digest_into_agrees "sha256" 32 Sha256.digest Sha256.digest_into;
          Alcotest.test_case "digest_into bounds" `Quick test_digest_into_bounds_checked;
        ] );
      ( "aes",
        [
          Alcotest.test_case "FIPS-197 known answer" `Quick test_aes_fips197_vector;
          Alcotest.test_case "key length check" `Quick test_aes_key_length_checked;
          aes_ctr_involution;
          aes_ctr_random_access;
          Alcotest.test_case "CTR misuse rejected" `Quick test_aes_ctr_rejects_misuse;
        ] );
      ( "des",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_des_vectors;
          Alcotest.test_case "3DES with equal keys = DES" `Quick test_triple_des_degenerates_to_des;
          Alcotest.test_case "two-key 3DES" `Quick test_triple_des_two_key_form;
          Alcotest.test_case "key length checks" `Quick test_key_length_checked;
          des_complementation;
          des_roundtrip;
          triple_roundtrip;
        ] );
      ( "modes",
        mode_roundtrips @ mode_into_equivalence
        @ [
            Alcotest.test_case "into-APIs reject misuse" `Quick test_into_rejects_misuse;
            Alcotest.test_case "into-APIs accept len=0" `Quick test_into_zero_length;
            Alcotest.test_case "into-APIs reject aliasing" `Quick test_into_rejects_aliasing;
            Alcotest.test_case "positional base alignment" `Quick
              test_positional_into_rejects_unaligned_base;
            Alcotest.test_case "plain ECB leaks" `Quick test_ecb_leaks_equal_blocks;
            Alcotest.test_case "positional ECB hides" `Quick test_positional_hides_equal_blocks;
            Alcotest.test_case "positional random access" `Quick test_positional_random_access;
            Alcotest.test_case "pad/unpad" `Quick test_pad_unpad;
            Alcotest.test_case "unpad rejects garbage" `Quick test_unpad_rejects_garbage;
          ] );
      ( "bitslice",
        [
          Alcotest.test_case "kernel ≡ scalar across run lengths" `Quick
            test_bitslice_kernel_differential;
          Alcotest.test_case "kernel bounds checks" `Quick
            test_bitslice_kernel_bounds_checked;
        ]
        @ fast_engine_differential );
      ( "merkle",
        [
          Alcotest.test_case "deterministic root" `Quick test_merkle_root_deterministic;
          Alcotest.test_case "rejects non-power-of-two" `Quick test_merkle_rejects_non_power_of_two;
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "paper Figure F1 cover" `Quick test_merkle_cover_matches_paper_figure;
          Alcotest.test_case "all ranges verify" `Quick test_merkle_cover_verifies;
          Alcotest.test_case "forged leaf detected" `Quick test_merkle_detects_wrong_leaf;
          merkle_cover_minimal;
        ] );
      ( "container",
        scheme_suites
        @ [
            Alcotest.test_case "cross-chunk substitution detected" `Quick
              test_block_substitution_across_chunks_detected;
            Alcotest.test_case "plain ECB gives no integrity" `Quick
              test_ecb_scheme_has_no_integrity;
            Alcotest.test_case "header validation" `Quick test_container_header_checks;
            Alcotest.test_case "fragment random access" `Quick test_fragment_random_access;
            Alcotest.test_case "geometry validation" `Quick test_invalid_geometry_rejected;
          ] );
      ( "fuzz",
        [ prop_any_corruption_detected; prop_wrong_key_never_succeeds_quietly ] );
    ]
