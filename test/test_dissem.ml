(* Tests for the dissemination subsystem: versioned (XACR2) containers
   and incremental re-encryption, chunk deltas under hostile bytes, the
   publisher's update/rotate lifecycle, license revocation and key
   epochs, and the wire-level delta sync a mirror runs against a live
   server. *)

module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Encoder = Xmlac_skip_index.Encoder
module Update = Xmlac_skip_index.Update
module Container = Xmlac_crypto.Secure_container
module Delta = Xmlac_dissem.Delta
module Publisher = Xmlac_dissem.Publisher
module License = Xmlac_soe.License
module Session = Xmlac_soe.Session
module Wire = Xmlac_wire
module Hospital = Xmlac_workload.Hospital
module Profiles = Xmlac_workload.Profiles

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-demo-24-byte-key!!"

let hospital =
  Hospital.generate ~seed:23
    ~config:{ Hospital.default_config with folders = 4 }
    ()

let encoded = Encoder.encode ~layout:Layout.Tcsbr hospital

let encrypt ?(generation = 0) ?(key_epoch = 0) ?(chunk_size = 512)
    ?(fragment_size = 64) scheme payload =
  Container.encrypt ~chunk_size ~fragment_size ~generation ~key_epoch ~scheme
    ~key payload

(* Versioned container format --------------------------------------------- *)

let test_v2_roundtrip () =
  List.iter
    (fun scheme ->
      let c = encrypt ~generation:7 ~key_epoch:2 scheme encoded in
      let c' = Container.of_bytes (Container.to_bytes c) in
      check int_t "generation survives" 7 (Container.generation c');
      check int_t "epoch survives" 2 (Container.key_epoch c');
      for i = 0 to Container.chunk_count c' - 1 do
        check int_t "chunk version survives" (Container.chunk_version c i)
          (Container.chunk_version c' i)
      done;
      check string_t "payload survives"
        encoded
        (Container.decrypt_all c' ~key ~verify:true))
    Container.all_schemes

let test_v1_compatible () =
  (* a pristine publication still serializes in the original layout *)
  let c = encrypt Container.Ecb_mht encoded in
  let bytes = Container.to_bytes c in
  check string_t "gen-0 epoch-0 keeps the XACR1 magic" "XACR1"
    (String.sub bytes 0 5);
  let c2 = encrypt ~generation:1 Container.Ecb_mht encoded in
  check string_t "versioned state promotes to XACR2" "XACR2"
    (String.sub (Container.to_bytes c2) 0 5)

let test_future_version_distinct () =
  let bytes = Container.to_bytes (encrypt ~generation:1 Container.Ecb encoded) in
  let with_magic m =
    String.concat "" [ m; String.sub bytes 5 (String.length bytes - 5) ]
  in
  (match Container.of_bytes_result (with_magic "XACR7") with
  | Error msg ->
      check bool_t "newer version is actionable" true
        (String.length msg >= 11
        && String.sub msg 0 11 = "unsupported")
  | Ok _ -> Alcotest.fail "future container version accepted");
  match Container.of_bytes_result (with_magic "YACR1") with
  | Error msg ->
      check bool_t "garbage magic is a different error" true
        (msg <> "" && String.sub msg 0 (min 11 (String.length msg)) <> "unsupported")
  | Ok _ -> Alcotest.fail "garbage magic accepted"

(* Incremental re-encryption and the Update cost model --------------------- *)

(* The contract under test: [Update.cost.chunks_dirty] names exactly the
   chunks [Container.reencrypt] rewrites, and the rewritten container
   decrypts to the new payload with every untouched chunk's ciphertext
   physically reused. *)
let reencrypt_agrees ?(chunk_size = 512) ~scheme payload op =
  let payload', cost =
    Update.update_encoded ~chunk_size ~layout:Layout.Tcsbr payload op
  in
  let c = encrypt ~chunk_size scheme payload in
  let c', rewritten = Container.reencrypt c ~key ~old_payload:payload ~payload:payload' in
  check (Alcotest.list int_t) "cost model predicts the rewritten chunks"
    cost.Update.chunks_dirty rewritten;
  check int_t "generation bumped" (Container.generation c + 1)
    (Container.generation c');
  List.iteri
    (fun i () ->
      if i < Container.chunk_count c then
        let expect =
          if List.mem i rewritten then Container.generation c'
          else Container.chunk_version c i
        in
        check int_t
          (Printf.sprintf "chunk %d version" i)
          expect
          (Container.chunk_version c' i))
    (List.init (Container.chunk_count c') (fun _ -> ()));
  check string_t "new payload decrypts" payload'
    (Container.decrypt_all c' ~key ~verify:true);
  (payload', cost, rewritten)

let test_update_localized () =
  (* a same-length text rewrite dirties a strict subset of the chunks *)
  let _, _, rewritten =
    reencrypt_agrees ~scheme:Container.Ecb_mht encoded
      (Update.Set_text ([ 0; 0; 0; 0 ], "000000000"))
  in
  let chunks = (String.length encoded + 511) / 512 in
  check bool_t "some chunk rewritten" true (rewritten <> []);
  check bool_t "not all chunks rewritten" true
    (List.length rewritten < chunks)

let test_update_noop () =
  (* rewriting a text to its current value moves the generation but
     rewrites nothing *)
  let doc = Tree.parse "<r><a>fixed</a><b>tail</b></r>" in
  let payload = Encoder.encode ~layout:Layout.Tcsbr doc in
  let _, cost, rewritten =
    reencrypt_agrees ~scheme:Container.Cbc_sha payload
      (Update.Set_text ([ 0; 0 ], "fixed"))
  in
  check (Alcotest.list int_t) "no-op update dirties nothing" [] rewritten;
  check int_t "no bytes rewritten" 0 cost.Update.rewritten_bytes

let test_update_root_replacement () =
  (* replacing the root subtree rewrites the whole document *)
  let payload', _, rewritten =
    reencrypt_agrees ~scheme:Container.Ecb_mht encoded
      (Update.Replace_subtree ([], Tree.parse "<Hospital><Folder>gone</Folder></Hospital>"))
  in
  let chunks' = (String.length payload' + 511) / 512 in
  check int_t "every surviving chunk rewritten" chunks'
    (List.length rewritten)

let test_update_chunk_straddle () =
  (* a long text crossing chunk boundaries: its same-length rewrite must
     dirty every chunk the text touches, and only those *)
  let long = String.make 1600 'a' in
  let doc = Tree.parse (Printf.sprintf "<r><pad>x</pad><t>%s</t></r>" long) in
  let payload = Encoder.encode ~layout:Layout.Tcsbr doc in
  let _, _, rewritten =
    reencrypt_agrees ~scheme:Container.Cbc_shac payload
      (Update.Set_text ([ 1; 0 ], String.make 1600 'b'))
  in
  check bool_t "edit straddles a chunk boundary" true
    (List.length rewritten >= 2);
  (* consecutive chunks: the text is contiguous in the encoding *)
  let rec consecutive = function
    | a :: (b :: _ as rest) -> a + 1 = b && consecutive rest
    | _ -> true
  in
  check bool_t "dirty chunks are contiguous" true (consecutive rewritten)

let test_update_dictionary_growth () =
  (* a new tag re-encodes everything: the dictionary changed *)
  let payload', cost, rewritten =
    reencrypt_agrees ~scheme:Container.Ecb encoded
      (Update.Insert_child ([], 0, Tree.parse "<Brandnew>z</Brandnew>"))
  in
  check bool_t "dictionary changed" true cost.Update.dictionary_changed;
  let chunks' = (String.length payload' + 511) / 512 in
  check int_t "dictionary growth rewrites everything" chunks'
    (List.length rewritten)

(* Chunk deltas ------------------------------------------------------------ *)

let update_once payload =
  fst
    (Update.update_encoded ~chunk_size:512 ~layout:Layout.Tcsbr payload
       (Update.Set_text ([ 1; 0; 0; 0 ], "123456789")))

let test_delta_roundtrip () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Ecb_mht ~master:"s3cret" encoded in
  let delta, _ = Publisher.update p ~payload:(update_once encoded) in
  (match Delta.decode (Delta.encode delta) with
  | Ok d -> check bool_t "update delta roundtrips" true (d = delta)
  | Error e -> Alcotest.fail ("roundtrip rejected: " ^ e));
  check int_t "wire_bytes is exact" (String.length (Delta.encode delta))
    (Delta.wire_bytes delta);
  let rot = Publisher.rotate p ~revoke:[ "eve"; "mallory" ] in
  match Delta.decode (Delta.encode rot) with
  | Ok d ->
      check bool_t "rotation delta roundtrips" true (d = rot);
      check (Alcotest.list string_t) "revocations travel"
        [ "eve"; "mallory" ] d.Delta.revoked
  | Error e -> Alcotest.fail ("rotation roundtrip rejected: " ^ e)

let test_delta_hostile_decode () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Cbc_sha ~master:"s3cret" encoded in
  let delta, _ = Publisher.update p ~payload:(update_once encoded) in
  let bytes = Delta.encode delta in
  (* every strict prefix is rejected, never raises *)
  for n = 0 to String.length bytes - 1 do
    match Delta.decode (String.sub bytes 0 n) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" n
    | Error _ -> ()
  done;
  (* every single-byte corruption is total: Error or a still-structurally
     valid delta, but no exception escapes *)
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    match Delta.decode (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
  done;
  match Delta.decode ("YDLT1" ^ String.sub bytes 5 (String.length bytes - 5)) with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ()

let test_delta_apply_rules () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Ecb_mht ~master:"s3cret" encoded in
  let c0 = Publisher.container p in
  let delta, _ = Publisher.update p ~payload:(update_once encoded) in
  (* the graft lands byte-identical to the publisher's own container *)
  (match Delta.apply c0 delta with
  | Ok c1 ->
      check string_t "grafted container is byte-identical"
        (Container.to_bytes (Publisher.container p))
        (Container.to_bytes c1)
  | Error e -> Alcotest.fail ("apply refused a valid delta: " ^ e));
  (* wrong starting generation *)
  (match Delta.apply c0 { delta with Delta.from_gen = 5; to_gen = 6 } with
  | Ok _ -> Alcotest.fail "generation gap accepted"
  | Error _ -> ());
  (* an epoch change must rewrite every chunk *)
  (match Delta.apply c0 { delta with Delta.key_epoch = 1 } with
  | Ok _ -> Alcotest.fail "partial-coverage rotation accepted"
  | Error _ -> ());
  (* geometry mismatch *)
  let other = encrypt ~chunk_size:1024 ~fragment_size:128 Container.Ecb_mht encoded in
  match Delta.apply other delta with
  | Ok _ -> Alcotest.fail "geometry mismatch accepted"
  | Error _ -> ()

(* Publisher lifecycle ----------------------------------------------------- *)

let test_publisher_update_chain () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Cbc_shac ~master:"s3cret" encoded in
  check int_t "starts at generation 0" 0 (Publisher.generation p);
  let mirror = ref (Publisher.container p) in
  for r = 1 to 3 do
    let payload' =
      fst
        (Update.update_encoded ~chunk_size:512 ~layout:Layout.Tcsbr
           (Publisher.payload p)
           (Update.Set_text ([ (r - 1) mod 4; 0; 0; 0 ], Printf.sprintf "%09d" r)))
    in
    let delta, _ = Publisher.update p ~payload:payload' in
    check int_t "generation advances" r (Publisher.generation p);
    check int_t "delta spans one generation" (r - 1) delta.Delta.from_gen;
    match Delta.apply !mirror delta with
    | Ok c -> mirror := c
    | Error e -> Alcotest.failf "chain apply failed at %d: %s" r e
  done;
  check string_t "chained mirror tracks the publisher"
    (Container.to_bytes (Publisher.container p))
    (Container.to_bytes !mirror)

let test_publisher_rotation_kills_old_epoch () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Ecb_mht ~master:"s3cret" encoded in
  let old_key = Publisher.key p in
  let rot = Publisher.rotate p ~revoke:[ "mallory" ] in
  check int_t "epoch bumped" 1 (Publisher.epoch p);
  check (Alcotest.list string_t) "revocation recorded" [ "mallory" ]
    (Publisher.revoked p);
  check int_t "rotation covers every chunk"
    (Container.chunk_count (Publisher.container p))
    (List.length rot.Delta.full);
  (* the new key decrypts; the old key fails the digest check *)
  check string_t "new epoch key decrypts" (Publisher.payload p)
    (Container.decrypt_all (Publisher.container p) ~key:(Publisher.key p)
       ~verify:true);
  (match
     Container.decrypt_all (Publisher.container p) ~key:old_key ~verify:true
   with
  | exception Container.Integrity_failure _ -> ()
  | exception e ->
      Alcotest.failf "unexpected failure kind: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "pre-rotation key still decrypts");
  (* ECB has no digests: the old key yields garbage, never the payload *)
  let pe = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Ecb ~master:"s3cret" encoded in
  let old_key = Publisher.key pe in
  ignore (Publisher.rotate pe ~revoke:[] : Delta.t);
  (match
     Container.decrypt_all (Publisher.container pe) ~key:old_key ~verify:false
   with
  | exception _ -> ()
  | pt ->
      check bool_t "ECB old key yields garbage" false
        (pt = Publisher.payload pe));
  check bool_t "epoch keys are distinct" false
    (Publisher.epoch_key_bytes ~master:"s3cret" ~epoch:0
    = Publisher.epoch_key_bytes ~master:"s3cret" ~epoch:1)

(* Licenses: epochs and revocation ----------------------------------------- *)

let test_license_epochs () =
  let mk epoch =
    License.make ~subject:"alice" ~key_epoch:epoch
      ~document_key:(Publisher.epoch_key_bytes ~master:"m" ~epoch)
      [ ("r1", Xmlac_core.Rule.Permit, "//Admin") ]
  in
  (match License.authorize (mk 1) ~container_epoch:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("matching epoch refused: " ^ e));
  (match License.authorize (mk 0) ~container_epoch:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale-epoch license accepted");
  (match License.authorize (mk 2) ~container_epoch:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "future-epoch license accepted");
  (match
     License.authorize (mk 1) ~revoked:[ "bob"; "alice" ] ~container_epoch:1
   with
  | Error e ->
      check bool_t "refusal names the revocation" true
        (String.length e > 0)
  | Ok () -> Alcotest.fail "revoked subject accepted");
  (* the epoch survives sealing (XLIC2) and the v1 default stays 0 *)
  let blob = License.seal ~soe_key:key (mk 3) in
  match License.unseal ~soe_key:key blob with
  | Ok lic ->
      check int_t "epoch survives seal/unseal" 3 lic.License.key_epoch
  | Error e -> Alcotest.fail ("sealed epoch-3 license rejected: " ^ e)

(* Wire-level delta sync --------------------------------------------------- *)

let with_server publisher f =
  let server = Wire.Server.create () in
  Wire.Server.publish server ~id:"doc" (Publisher.container publisher);
  let listener = Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0)) in
  let stop = ref false in
  let thread =
    Thread.create
      (fun () ->
        try Wire.Server.serve ~stop server listener
        with Wire.Error.Wire _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join thread;
      Wire.Transport.close_listener listener)
    (fun () ->
      let bound = Wire.Transport.bound_addr listener in
      f server (fun () -> Wire.Transport.connect bound))

let test_mirror_sync_all_schemes () =
  List.iter
    (fun scheme ->
      let p = Publisher.create ~chunk_size:512 ~fragment_size:64 ~scheme
          ~master:"s3cret" encoded in
      with_server p (fun server connector ->
          let m = Wire.Mirror.fetch connector in
          check string_t "bootstrap fetch is byte-exact"
            (Container.to_bytes (Publisher.container p))
            (Container.to_bytes (Wire.Mirror.container m));
          (match Wire.Mirror.sync m with
          | Wire.Mirror.Uptodate -> ()
          | _ -> Alcotest.fail "fresh mirror should be up to date");
          let delta, _ = Publisher.update p ~payload:(update_once encoded) in
          (match Wire.Server.apply_delta server ~id:"doc" delta with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("apply_delta: " ^ e));
          (match Wire.Mirror.sync m with
          | Wire.Mirror.Applied { from_gen = 0; to_gen = 1; delta_bytes; _ }
            ->
              check bool_t "delta is smaller than the container" true
                (delta_bytes
                < String.length (Container.to_bytes (Publisher.container p)))
          | _ -> Alcotest.fail "expected a chunk delta");
          (* a fresh full fetch carries no per-chunk history (its version
             vector is uniformly the current generation), so the replicas
             are compared as plaintext plus metadata, not bytes *)
          let m2 = Wire.Mirror.fetch connector in
          check int_t "full re-fetch lands on the same generation"
            (Wire.Mirror.generation m)
            (Wire.Mirror.generation m2);
          check string_t "synced replica decrypts like a full re-fetch"
            (Container.decrypt_all (Wire.Mirror.container m2)
               ~key:(Publisher.key p) ~verify:true)
            (Container.decrypt_all (Wire.Mirror.container m)
               ~key:(Publisher.key p) ~verify:true);
          check string_t "and decrypts to the publisher's payload"
            (Publisher.payload p)
            (Container.decrypt_all (Wire.Mirror.container m)
               ~key:(Publisher.key p) ~verify:true);
          Wire.Mirror.close m2;
          Wire.Mirror.close m))
    Container.all_schemes

let test_mirror_sync_across_rotation () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Ecb_mht ~master:"s3cret" encoded in
  with_server p (fun server connector ->
      let m = Wire.Mirror.fetch connector in
      let rot = Publisher.rotate p ~revoke:[ "mallory" ] in
      (match Wire.Server.apply_delta server ~id:"doc" rot with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("apply_delta: " ^ e));
      (match Wire.Mirror.sync m with
      | Wire.Mirror.Applied { revoked; _ } ->
          check (Alcotest.list string_t) "revocations delivered"
            [ "mallory" ] revoked
      | _ -> Alcotest.fail "rotation delta expected");
      check (Alcotest.list string_t) "mirror retains the list" [ "mallory" ]
        (Wire.Mirror.revoked m);
      check int_t "replica moved to the new epoch" 1
        (Container.key_epoch (Wire.Mirror.container m));
      check string_t "new epoch key decrypts the replica"
        (Publisher.payload p)
        (Container.decrypt_all (Wire.Mirror.container m)
           ~key:(Publisher.key p) ~verify:true);
      Wire.Mirror.close m)

let test_mirror_refetch_on_fresh_lineage () =
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64
      ~scheme:Container.Cbc_sha ~master:"s3cret" encoded in
  (* age the lineage a little so the mirror is ahead of a fresh one *)
  ignore (Publisher.update p ~payload:(update_once encoded) : Delta.t * int list);
  with_server p (fun server connector ->
      let m = Wire.Mirror.fetch connector in
      (* the origin replaces the document with an unrelated publication:
         generations restart, the mirror's lineage cannot be bridged *)
      let doc2 =
        Hospital.generate ~seed:99
          ~config:{ Hospital.default_config with folders = 2 }
          ()
      in
      let p2 = Publisher.create ~chunk_size:512 ~fragment_size:64
          ~scheme:Container.Cbc_sha ~master:"0ther"
          (Encoder.encode ~layout:Layout.Tcsbr doc2) in
      Wire.Server.publish server ~id:"doc" (Publisher.container p2);
      (match Wire.Mirror.sync m with
      | Wire.Mirror.Refetched _ -> ()
      | Wire.Mirror.Applied _ -> Alcotest.fail "unbridgeable lineage applied"
      | Wire.Mirror.Uptodate -> Alcotest.fail "stale mirror claimed current");
      check string_t "refetch adopted the new lineage"
        (Container.to_bytes (Publisher.container p2))
        (Container.to_bytes (Wire.Mirror.container m));
      Wire.Mirror.close m)

(* The SOE end: a synced replica serves the same view ---------------------- *)

let test_synced_replica_view () =
  let scheme = Container.Ecb_mht in
  let p = Publisher.create ~chunk_size:512 ~fragment_size:64 ~scheme
      ~master:"s3cret" encoded in
  with_server p (fun server connector ->
      let m = Wire.Mirror.fetch connector in
      let delta, _ = Publisher.update p ~payload:(update_once encoded) in
      (match Wire.Server.apply_delta server ~id:"doc" delta with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("apply_delta: " ^ e));
      (match Wire.Mirror.sync m with
      | Wire.Mirror.Applied _ -> ()
      | _ -> Alcotest.fail "expected a delta");
      let config =
        {
          (Session.default_config ~scheme ()) with
          Session.chunk_size = 512;
          fragment_size = 64;
          key = Publisher.key p;
        }
      in
      let published container =
        {
          Session.layout = Layout.Tcsbr;
          container;
          encoded_bytes = String.length (Publisher.payload p);
          source_text_bytes = Tree.text_bytes hospital;
        }
      in
      let origin =
        Session.evaluate config
          (published (Publisher.container p))
          Profiles.secretary
      in
      let replica =
        Session.evaluate config
          (published (Wire.Mirror.container m))
          Profiles.secretary
      in
      check string_t "synced replica serves the origin's view"
        (Xmlac_xml.Writer.events_to_string origin.Session.events)
        (Xmlac_xml.Writer.events_to_string replica.Session.events);
      Wire.Mirror.close m)

let () =
  Alcotest.run "dissem"
    [
      ( "container",
        [
          Alcotest.test_case "XACR2 roundtrip" `Quick test_v2_roundtrip;
          Alcotest.test_case "XACR1 compatibility" `Quick test_v1_compatible;
          Alcotest.test_case "future version vs bad magic" `Quick
            test_future_version_distinct;
        ] );
      ( "reencrypt",
        [
          Alcotest.test_case "localized update" `Quick test_update_localized;
          Alcotest.test_case "no-op update" `Quick test_update_noop;
          Alcotest.test_case "root replacement" `Quick
            test_update_root_replacement;
          Alcotest.test_case "chunk-boundary straddle" `Quick
            test_update_chunk_straddle;
          Alcotest.test_case "dictionary growth" `Quick
            test_update_dictionary_growth;
        ] );
      ( "delta",
        [
          Alcotest.test_case "roundtrip" `Quick test_delta_roundtrip;
          Alcotest.test_case "hostile decode" `Quick test_delta_hostile_decode;
          Alcotest.test_case "apply rules" `Quick test_delta_apply_rules;
        ] );
      ( "publisher",
        [
          Alcotest.test_case "update chain" `Quick test_publisher_update_chain;
          Alcotest.test_case "rotation kills the old epoch" `Quick
            test_publisher_rotation_kills_old_epoch;
        ] );
      ( "license",
        [ Alcotest.test_case "epochs and revocation" `Quick test_license_epochs ] );
      ( "sync",
        [
          Alcotest.test_case "delta sync, all schemes" `Quick
            test_mirror_sync_all_schemes;
          Alcotest.test_case "sync across a rotation" `Quick
            test_mirror_sync_across_rotation;
          Alcotest.test_case "refetch on fresh lineage" `Quick
            test_mirror_refetch_on_fresh_lineage;
          Alcotest.test_case "synced replica view" `Quick
            test_synced_replica_view;
        ] );
    ]
