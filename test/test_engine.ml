(* Differential suite for the crypto engines: a session running on the
   fast engine (bitsliced DES + batched Merkle verification) must be
   byte-for-byte indistinguishable from the reference engine — same
   authorized output, same cost-model counters, same cache behaviour — on
   every scheme and at every job count. Only wall-clock (and the gc/pool
   families) may differ, plus the [engine.*] counters that exist precisely
   to expose engine-specific work. *)

open Xmlac_soe
module Tree = Xmlac_xml.Tree
module Container = Xmlac_crypto.Secure_container
module Engine = Xmlac_crypto.Engine
module Layout = Xmlac_skip_index.Layout
module Metrics = Xmlac_obs.Metrics

let check = Alcotest.check
let bool_t = Alcotest.bool

let is_engine_metric name =
  String.split_on_char '.' name |> List.exists (String.equal "engine")

(* Every gated (deterministic) metric except the engine-specific family:
   this is the set the two engines must agree on exactly. *)
let invariant_metrics m =
  List.filter
    (fun (n, _) -> Xmlac_obs.Gate.gated n && not (is_engine_metric n))
    (Session.metrics m)

let engine_metrics m =
  List.filter (fun (n, _) -> is_engine_metric n) (Session.metrics m)

let metric m name =
  match Metrics.find (Session.metrics m) name with
  | Some v -> int_of_float (Metrics.to_float v)
  | None -> Alcotest.failf "metric %s missing" name

let output m = Xmlac_xml.Writer.events_to_string m.Session.events

let config_for scheme =
  {
    (Session.default_config ~scheme ()) with
    Session.chunk_size = 512;
    fragment_size = 64;
  }

let policy_of rules =
  Xmlac_core.Policy.make
    (List.mapi
       (fun i (sign, path) ->
         Xmlac_core.Rule.make
           ~id:(Printf.sprintf "R%d" i)
           ~sign:(if sign then Xmlac_core.Rule.Permit else Xmlac_core.Rule.Deny)
           path)
       rules)

(* Random doc/policy pairs -------------------------------------------------- *)

(* 60 random pairs x 5 schemes x jobs {1, 4} x both engines. The reference
   run at jobs=1 is the pinned truth; every other (engine, jobs) cell must
   reproduce its output and its invariant metrics exactly. *)
let prop_engines_indistinguishable =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"Fast ≡ Reference on random doc/policy pairs (all schemes, jobs 1 and 4)"
       (QCheck2.Gen.pair Testkit.gen_tree Testkit.gen_rules)
       ~print:(fun (t, rules) ->
         Testkit.tree_print t ^ " | " ^ Testkit.rules_print rules)
       (fun (tree, rules) ->
         let policy = policy_of rules in
         List.for_all
           (fun scheme ->
             let config = config_for scheme in
             let verify = scheme <> Container.Ecb in
             let published = Session.publish config ~layout:Layout.Tcsbr tree in
             let base = Session.evaluate ~verify config published policy in
             let base_out = output base in
             let base_invariant = invariant_metrics base in
             List.for_all
               (fun engine ->
                 List.for_all
                   (fun jobs ->
                     let m =
                       Session.evaluate ~verify ~jobs
                         { config with Session.engine }
                         published policy
                     in
                     String.equal (output m) base_out
                     && invariant_metrics m = base_invariant)
                   [ 1; 4 ])
               Engine.all)
           Container.all_schemes))

(* A real workload ---------------------------------------------------------- *)

(* On a document big enough for multi-chunk windows, pin down not just the
   equality but that the fast engine actually did batched work — and that
   its engine.* counters are themselves deterministic across job counts. *)
let test_fast_engine_on_hospital_workload () =
  let doc =
    Xmlac_workload.Hospital.generate ~seed:11
      ~config:{ Xmlac_workload.Hospital.default_config with folders = 4 }
      ()
  in
  let policy = Xmlac_workload.Profiles.doctor ~user:"dr00" in
  List.iter
    (fun scheme ->
      let name = Container.scheme_to_string scheme in
      let config =
        {
          (Session.default_config ~scheme ()) with
          Session.chunk_size = 1024;
          fragment_size = 128;
        }
      in
      let verify = scheme <> Container.Ecb in
      let published = Session.publish config ~layout:Layout.Tcsbr doc in
      let reference = Session.evaluate ~verify config published policy in
      let fast =
        Session.evaluate ~verify
          { config with Session.engine = Engine.Fast }
          published policy
      in
      check Alcotest.string (name ^ ": outputs identical") (output reference)
        (output fast);
      check bool_t (name ^ ": invariant metrics identical") true
        (invariant_metrics reference = invariant_metrics fast);
      (* the reference engine never batches *)
      check Alcotest.int (name ^ ": reference batches nothing") 0
        (metric reference "channel.engine.batched_blocks");
      check Alcotest.int (name ^ ": reference groups nothing") 0
        (metric reference "channel.engine.merkle_groups");
      (* AES-CTR shares one code path across engines: nothing to batch.
         (Whether the DES schemes batch here depends on how wide the
         evaluator's reads are — the bulk-read test below pins that.) *)
      (match scheme with
      | Container.Aes_ctr ->
          check Alcotest.int (name ^ ": no DES kernel for AES") 0
            (metric fast "channel.engine.batched_blocks")
      | _ -> ());
      (* grouped Merkle recombination fires exactly for ECB-MHT *)
      let groups = metric fast "channel.engine.merkle_groups" in
      (match scheme with
      | Container.Ecb_mht ->
          check bool_t (name ^ ": Merkle verification grouped") true (groups > 0)
      | _ -> check Alcotest.int (name ^ ": no Merkle groups") 0 groups);
      (* engine counters are deterministic: same at any job count *)
      let fast4 =
        Session.evaluate ~verify ~jobs:4
          { config with Session.engine = Engine.Fast }
          published policy
      in
      check bool_t (name ^ ": engine metrics jobs-independent") true
        (engine_metrics fast = engine_metrics fast4);
      check bool_t (name ^ ": invariant metrics jobs-independent") true
        (invariant_metrics fast = invariant_metrics fast4))
    Container.all_schemes

(* Bulk reads through the channel ------------------------------------------- *)

(* Reading a whole container in wide sequential steps produces decrypt runs
   far above [Modes.batch_threshold]: every DES scheme must route real work
   through the bitsliced kernel, and ECB-MHT must verify in chunk groups. *)
let test_fast_engine_batches_bulk_reads () =
  let key = Xmlac_crypto.Des.Triple.key_of_string "0123456789abcdefFEDCBA98" in
  let payload = String.init 40_000 (fun i -> Char.chr ((i * 37) mod 251)) in
  List.iter
    (fun scheme ->
      let name = Container.scheme_to_string scheme in
      let verify = scheme <> Container.Ecb in
      let container =
        Container.encrypt ~chunk_size:2048 ~fragment_size:256 ~scheme ~key
          payload
      in
      let counters = Channel.fresh_counters () in
      let src =
        Channel.source ~verify ~engine:Engine.Fast ~container ~key counters
      in
      let buf = Buffer.create (String.length payload) in
      let open Xmlac_skip_index.Decoder in
      let rec go pos =
        if pos < src.length then begin
          let len = min 8192 (src.length - pos) in
          Buffer.add_string buf (src.read ~pos ~len);
          go (pos + len)
        end
      in
      go 0;
      check Alcotest.string (name ^ ": bulk read roundtrips") payload
        (Buffer.contents buf);
      let batched = counters.Channel.engine_batched_blocks in
      (match scheme with
      | Container.Aes_ctr ->
          check Alcotest.int (name ^ ": no DES kernel for AES") 0 batched
      | _ ->
          check bool_t (name ^ ": bitsliced kernel engaged") true (batched > 0));
      let groups = counters.Channel.engine_merkle_groups in
      match scheme with
      | Container.Ecb_mht ->
          check bool_t (name ^ ": grouped Merkle verification") true (groups > 0)
      | _ -> check Alcotest.int (name ^ ": no Merkle groups") 0 groups)
    Container.all_schemes

(* Tampering through the fast path ------------------------------------------ *)

(* The batched Merkle group check must keep the security contract: when a
   whole chunk is read and verified in one grouped recombination, a
   tampered fragment is detected no matter which fragment it is — no
   fragment can hide behind another fragment's sibling cover. *)
let test_fast_engine_detects_tampering () =
  let key = Xmlac_crypto.Des.Triple.key_of_string "0123456789abcdefFEDCBA98" in
  let payload = String.init 12_000 (fun i -> Char.chr ((i * 131 + 7) mod 256)) in
  List.iter
    (fun scheme ->
      let container =
        Container.encrypt ~chunk_size:1024 ~fragment_size:128 ~scheme ~key
          payload
      in
      (* one corrupted block inside each of chunk 1's eight fragments *)
      for frag = 0 to 7 do
        let block = (frag * 16) + (frag mod 16) in
        let tampered =
          Container.substitute_block container ~chunk:1 ~block
            (String.make 8 'Z')
        in
        let counters = Channel.fresh_counters () in
        let src =
          Channel.source ~verify:true ~engine:Engine.Fast ~container:tampered
            ~key counters
        in
        let open Xmlac_skip_index.Decoder in
        match src.read ~pos:0 ~len:src.length with
        | exception Container.Integrity_failure _ -> ()
        | _ ->
            Alcotest.failf "%s: tampered fragment %d not detected by fast engine"
              (Container.scheme_to_string scheme)
              frag
      done)
    [ Container.Ecb_mht; Container.Cbc_sha; Container.Cbc_shac; Container.Aes_ctr ]

let test_engine_names_roundtrip () =
  List.iter
    (fun e ->
      match Engine.of_string (Engine.to_string e) with
      | Some e' when e = e' -> ()
      | _ -> Alcotest.failf "engine name %s does not roundtrip" (Engine.to_string e))
    Engine.all;
  check bool_t "unknown name rejected" true (Engine.of_string "turbo" = None);
  check bool_t "reference is the default" true (Engine.default = Engine.Reference)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          prop_engines_indistinguishable;
          Alcotest.test_case "hospital workload, all schemes" `Quick
            test_fast_engine_on_hospital_workload;
          Alcotest.test_case "bulk reads hit the batched kernel" `Quick
            test_fast_engine_batches_bulk_reads;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "tampering detected through batched verify" `Quick
            test_fast_engine_detects_tampering;
        ] );
      ( "api",
        [ Alcotest.test_case "engine names" `Quick test_engine_names_roundtrip ] );
    ]
