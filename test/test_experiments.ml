(* Shape regression suite: small-scale versions of the paper's experiments,
   asserting the qualitative claims recorded in EXPERIMENTS.md so they are
   CI-checked, not just eyeballed from the benchmark output. *)

module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Stats = Xmlac_skip_index.Stats
module Container = Xmlac_crypto.Secure_container
module Session = Xmlac_soe.Session
module Cost_model = Xmlac_soe.Cost_model
module W = Xmlac_workload

let check = Alcotest.check
let bool_t = Alcotest.bool

let hospital =
  lazy (W.Hospital.generate_sized ~seed:1 ~target_bytes:250_000 ())

let config = Session.default_config ()

let tcsbr = lazy (Session.publish config ~layout:Layout.Tcsbr (Lazy.force hospital))
let tc = lazy (Session.publish config ~layout:Layout.Tc (Lazy.force hospital))

let profiles () =
  [
    W.Profiles.secretary;
    W.Profiles.doctor ~user:W.Hospital.full_time_physician;
    W.Profiles.researcher ~groups:[ 1; 2; 3 ] ();
  ]

let time ?verify ?options published policy =
  (Session.evaluate ?verify ?options config published policy).Session.breakdown
    .Cost_model.total_s

(* Figure 8 shapes ----------------------------------------------------------- *)

let test_fig8_shapes () =
  List.iter
    (fun kind ->
      let doc = W.Datasets.generate kind ~seed:3 ~target_bytes:100_000 in
      let get layout = (Stats.measure ~layout doc).Stats.structure_bytes in
      let name = W.Datasets.name kind in
      if not (get Layout.Tc * 2 < get Layout.Nc) then
        Alcotest.failf "%s: TC should be well below NC" name;
      if not (get Layout.Tcs >= get Layout.Tc) then
        Alcotest.failf "%s: TCS pays for sizes" name;
      if not (get Layout.Tcsb >= get Layout.Tcs) then
        Alcotest.failf "%s: TCSB pays for bitmaps" name;
      if not (get Layout.Tcsbr < get Layout.Tcsb) then
        Alcotest.failf "%s: recursion must beat absolute bitmaps" name)
    W.Datasets.all

let test_fig8_treebank_bitmap_blowup () =
  let doc = W.Datasets.generate W.Datasets.Treebank ~seed:3 ~target_bytes:100_000 in
  let get layout = (Stats.measure ~layout doc).Stats.structure_bytes in
  (* the 250-tag dictionary makes absolute bitmaps explode; the recursive
     encoding recovers most of it (paper Figure 8's clipped bar) *)
  check bool_t "TCSB at least 3x TCS on Treebank" true
    (get Layout.Tcsb > 3 * get Layout.Tcs);
  check bool_t "TCSBR under half of TCSB" true
    (2 * get Layout.Tcsbr < get Layout.Tcsb)

(* Figure 9 shapes ----------------------------------------------------------- *)

let test_fig9_bf_vs_tcsbr_vs_lwb () =
  List.iter
    (fun policy ->
      let t_bf = time ~verify:false (Lazy.force tc) policy in
      let t_ix = time ~verify:false (Lazy.force tcsbr) policy in
      let lwb =
        (Session.lwb ~verify:false config
           ~authorized_bytes:
             (Session.authorized_encoded_bytes policy (Lazy.force hospital)))
          .Cost_model.total_s
      in
      check bool_t "BF at least 2x TCSBR" true (t_bf > 2. *. t_ix);
      check bool_t "LWB below TCSBR" true (lwb <= t_ix))
    (profiles ())

let test_fig9_cost_split () =
  let m =
    Session.evaluate ~verify:false config (Lazy.force tcsbr)
      (W.Profiles.doctor ~user:W.Hospital.full_time_physician)
  in
  let b = m.Session.breakdown in
  check bool_t "decryption+communication dominate" true
    (b.Cost_model.decryption_s +. b.Cost_model.communication_s
    > 4. *. b.Cost_model.access_control_s);
  check bool_t "access control under 20% (paper's bound)" true
    (b.Cost_model.access_control_s < 0.2 *. b.Cost_model.total_s)

(* Figure 10 shape ----------------------------------------------------------- *)

let test_fig10_monotone_in_result_size () =
  let policy = W.Profiles.secretary in
  let published = Lazy.force tcsbr in
  let runs =
    List.map
      (fun v ->
        let m =
          Session.evaluate ~verify:false
            ~query:(W.Profiles.age_query ~threshold:v) config published policy
        in
        (m.Session.result_bytes, m.Session.breakdown.Cost_model.total_s))
      [ 90; 50; 0 ]
  in
  match runs with
  | [ (r1, t1); (r2, t2); (r3, t3) ] ->
      check bool_t "result grows as the threshold drops" true (r1 < r2 && r2 < r3);
      check bool_t "time grows with result size" true (t1 <= t2 && t2 <= t3);
      check bool_t "non-zero intercept" true (t1 > 0.01)
  | _ -> assert false

(* Figure 11 shape ----------------------------------------------------------- *)

let test_fig11_scheme_ordering () =
  let policy = W.Profiles.secretary in
  let doc = Lazy.force hospital in
  let t scheme verify =
    let config = Session.default_config ~scheme () in
    let published = Session.publish config ~layout:Layout.Tcsbr doc in
    time ~verify published policy
  in
  let ecb = t Container.Ecb false in
  let mht = t Container.Ecb_mht true in
  let shac = t Container.Cbc_shac true in
  let sha = t Container.Cbc_sha true in
  check bool_t "ECB < ECB-MHT < CBC-SHAC < CBC-SHA" true
    (ecb < mht && mht < shac && shac < sha)

(* Figure 12 shape ----------------------------------------------------------- *)

let test_fig12_integrity_tax () =
  let policy = W.Profiles.secretary in
  let with_int = time ~verify:true (Lazy.force tcsbr) policy in
  let without = time ~verify:false (Lazy.force tcsbr) policy in
  check bool_t "integrity costs something" true (with_int > without);
  check bool_t "but less than 4x" true (with_int < 4. *. without)

(* Ablation shapes ------------------------------------------------------------ *)

let test_ablation_desctag_filter_is_the_enabler () =
  let policy = W.Profiles.secretary in
  let published = Lazy.force tcsbr in
  let t_off =
    time ~verify:false
      ~options:
        {
          Xmlac_core.Evaluator.enable_skipping = true;
          enable_rest_skips = true;
          enable_desctag_filter = false;
          enable_ara_memo = true;
        }
      published policy
  in
  let t_on = time ~verify:false published policy in
  check bool_t "DescTag filtering cuts time at least in half" true
    (2. *. t_on < t_off)

let test_memory_peak_is_small () =
  (* the SOE working set must stay smart-card sized even on a large
     document (the paper's 8KB RAM budget, modulo model constants) *)
  let m = Session.evaluate config (Lazy.force tcsbr) (W.Profiles.secretary) in
  let peak = m.Session.eval.Xmlac_core.Evaluator.memory_peak_bytes in
  check bool_t
    (Printf.sprintf "peak %dB under 64KB" peak)
    true (peak > 0 && peak < 65_536)

let test_memory_flat_in_document_size () =
  (* streaming: quadrupling the document must not quadruple the working
     set (it is bounded by depth + policy + pending work) *)
  let peak target =
    let doc = W.Hospital.generate_sized ~seed:9 ~target_bytes:target () in
    let published = Session.publish config ~layout:Layout.Tcsbr doc in
    (Session.evaluate ~verify:false config published
       (W.Profiles.doctor ~user:W.Hospital.full_time_physician))
      .Session.eval.Xmlac_core.Evaluator.memory_peak_bytes
  in
  let small = peak 60_000 and large = peak 240_000 in
  check bool_t
    (Printf.sprintf "memory sublinear (60KB:%dB vs 240KB:%dB)" small large)
    true
    (large < 2 * small)

let test_memory_grows_with_pending () =
  (* the researcher's pending protocol predicates hold more state *)
  let sec = Session.evaluate config (Lazy.force tcsbr) W.Profiles.secretary in
  let res =
    Session.evaluate config (Lazy.force tcsbr)
      (W.Profiles.researcher ~groups:[ 1; 2; 3; 4; 5 ] ())
  in
  check bool_t "researcher uses more SOE memory than secretary" true
    (res.Session.eval.Xmlac_core.Evaluator.memory_peak_bytes
    > sec.Session.eval.Xmlac_core.Evaluator.memory_peak_bytes)

let () =
  Alcotest.run "experiments"
    [
      ( "fig8",
        [
          Alcotest.test_case "layout ordering per dataset" `Quick test_fig8_shapes;
          Alcotest.test_case "Treebank bitmap blowup" `Quick test_fig8_treebank_bitmap_blowup;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "BF >> TCSBR >= LWB" `Quick test_fig9_bf_vs_tcsbr_vs_lwb;
          Alcotest.test_case "cost split" `Quick test_fig9_cost_split;
        ] );
      ("fig10", [ Alcotest.test_case "monotone in result size" `Quick test_fig10_monotone_in_result_size ]);
      ("fig11", [ Alcotest.test_case "scheme ordering" `Quick test_fig11_scheme_ordering ]);
      ("fig12", [ Alcotest.test_case "integrity tax" `Quick test_fig12_integrity_tax ]);
      ( "ablation",
        [
          Alcotest.test_case "DescTag filter enables skipping" `Quick
            test_ablation_desctag_filter_is_the_enabler;
          Alcotest.test_case "SOE memory stays bounded" `Quick test_memory_peak_is_small;
          Alcotest.test_case "memory flat in document size" `Quick
            test_memory_flat_in_document_size;
          Alcotest.test_case "memory grows with pending work" `Quick
            test_memory_grows_with_pending;
        ] );
    ]
