(* Replays the triaged regression corpus (test/corpus/, regenerable with
   gen_corpus.exe) through the trust boundary named by each file's prefix.

   Contract under test: every corpus input is hostile, so every boundary
   must answer with a typed rejection — [Accepted] means a corrupt input
   was swallowed, [Crashed] means an untyped exception escaped (the bug
   class this corpus pinned down). *)

module Boundary = Xmlac_fuzz.Boundary
module C = Xmlac_crypto.Secure_container

let corpus_dir = "corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-fuzz-24-byte-key!!"

let policy =
  match Xmlac_core.Policy.of_string "p1 + //a\np2 - //b" with
  | Ok p -> p
  | Error e -> failwith e

let corpus =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bin")
  |> List.sort compare

let boundaries_of name : (string * (string -> Boundary.outcome)) list =
  match String.index_opt name '_' with
  | Some i -> (
      match String.sub name 0 i with
      | "xml" -> [ ("xml-parse", Boundary.xml_parse) ]
      | "skip" -> [ ("skip-decode", Boundary.skip_decode) ]
      | "container" ->
          (* container bytes cross two boundaries: whole-document
             decryption, and the streaming SOE channel + evaluator *)
          [
            ("container", Boundary.container ~key);
            ( "channel-eval",
              fun bytes ->
                (Boundary.channel_eval ~key ~policy bytes).Boundary.outcome );
          ]
      | "policy" -> [ ("policy-text", Boundary.policy_text) ]
      | "wire" -> [ ("wire-frame", Boundary.wire_frame) ]
      | p -> Alcotest.failf "unknown corpus prefix %S in %s" p name)
  | None -> Alcotest.failf "corpus file %s has no boundary prefix" name

let replay name () =
  let bytes = read_file (Filename.concat corpus_dir name) in
  List.iter
    (fun (boundary, run) ->
      match run bytes with
      | Boundary.Rejected _ -> ()
      | Boundary.Accepted ->
          Alcotest.failf "%s: %s accepted a hostile input" name boundary
      | Boundary.Crashed detail ->
          Alcotest.failf "%s: %s crashed: %s" name boundary detail)
    (boundaries_of name)

let () =
  if List.length corpus < 20 then
    Alcotest.failf "regression corpus missing: found %d files in %s/"
      (List.length corpus) corpus_dir;
  Alcotest.run "fuzz_regressions"
    [
      ( "corpus",
        List.map (fun f -> Alcotest.test_case f `Quick (replay f)) corpus );
    ]
