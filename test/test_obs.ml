(* Tests for the observability layer: JSON encode/parse round trips, the
   metrics interchange format, deterministic hot-path counters on a known
   document/policy pair, the bench-report schema, and the perf gate's drift
   and shape checks — including that the committed BENCH_baseline.json
   parses and gates cleanly against itself. *)

open Xmlac_obs
module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Encoder = Xmlac_skip_index.Encoder
module Decoder = Xmlac_skip_index.Decoder
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Evaluator = Xmlac_core.Evaluator
module Session = Xmlac_soe.Session

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* Json ------------------------------------------------------------------- *)

let roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("tiny", Json.Float 1e-9);
        ("string", Json.String "a \"quoted\"\n\ttab \\ slash");
        ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  check bool_t "object round-trips" true (roundtrip j = j);
  (* compact and pretty print the same value *)
  check bool_t "pretty round-trips" true
    (Json.parse (Json.to_string ~pretty:true j) = Ok j)

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8, including a surrogate pair *)
  check bool_t "bmp escape" true
    (Json.parse {|"é"|} = Ok (Json.String "\xc3\xa9"));
  check bool_t "surrogate pair" true
    (Json.parse {|"😀"|} = Ok (Json.String "\xf0\x9f\x98\x80"));
  (match Json.parse "{\"a\": [1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must not parse");
  match Json.parse "[1] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must not parse"

let test_json_float_format () =
  (* integral floats keep a decimal point so they reparse as floats *)
  check string_t "integral float" "3.0" (Json.to_string (Json.Float 3.));
  check bool_t "nan is null" true (Json.to_string (Json.Float Float.nan) = "null");
  (* a value needing full precision survives *)
  let f = 0.1 +. 0.2 in
  check bool_t "precision kept" true (roundtrip (Json.Float f) = Json.Float f)

(* Metrics ---------------------------------------------------------------- *)

let test_metrics_roundtrip () =
  let m =
    Metrics.[ int "events" 1234; float "total_s" 0.125; float "nan" Float.nan ]
  in
  match Metrics.of_json (Metrics.to_json m) with
  | Error e -> Alcotest.failf "metrics reparse: %s" e
  | Ok m' ->
      check int_t "same length" (List.length m) (List.length m');
      check bool_t "int preserved" true
        (Metrics.find m' "events" = Some (Metrics.Int 1234));
      check bool_t "float preserved" true
        (Metrics.find m' "total_s" = Some (Metrics.Float 0.125));
      (* non-finite floats pass through null and resurface as nan *)
      (match Metrics.find m' "nan" with
      | Some (Metrics.Float f) -> check bool_t "nan resurfaces" true (Float.is_nan f)
      | _ -> Alcotest.fail "nan metric lost")

let test_metrics_prefix_render () =
  let m = Metrics.(prefix "eval" [ int "events_in" 7 ]) in
  check bool_t "prefix dots the name" true
    (Metrics.find m "eval.events_in" = Some (Metrics.Int 7));
  match Metrics.render Metrics.[ int "a" 1; float "wall_s" 0.5 ] with
  | [ l1; _ ] ->
      check bool_t "aligned name first" true
        (String.length l1 > 0 && l1.[0] = 'a')
  | _ -> Alcotest.fail "one line per metric"

(* Counter / Span / Trace ------------------------------------------------- *)

let test_counter () =
  let c = Counter.make "widgets" in
  Counter.incr c;
  Counter.add c 4;
  check int_t "value" 5 (Counter.value c);
  check bool_t "metric" true (Counter.metric c = Metrics.int "widgets" 5);
  Counter.reset c;
  check int_t "reset" 0 (Counter.value c)

(* the wall clock can step backwards (NTP); elapsed must clamp to zero
   rather than poison downstream sums and histograms *)
let test_span_clamp () =
  let future =
    {
      Span.name = "clamp";
      id = Context.fresh_span_id ();
      parent = None;
      trace = None;
      started_at = Span.now () +. 3600.;
    }
  in
  check bool_t "backwards clock clamps to zero" true (Span.elapsed future = 0.)

(* span.end is emitted even when the timed function raises, so traces of
   failed runs stay balanced *)
let test_span_end_on_raise () =
  let seen = ref [] in
  Trace.set_sink (Some (fun e -> seen := e :: !seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      (match Span.time "boom" (fun () -> failwith "expected") with
      | _ -> Alcotest.fail "exception must propagate"
      | exception Failure _ -> ());
      let names = List.rev_map (fun e -> e.Trace.name) !seen in
      check bool_t "span.end emitted on raise" true
        (names = [ "span.start"; "span.end" ]))

let test_histogram () =
  let h = Histogram.make "wall_test" in
  check bool_t "empty quantile is zero" true (Histogram.quantile h 0.5 = 0.);
  List.iter (Histogram.observe h) [ 1e-4; 1e-4; 1e-4; 0.1 ];
  (* hostile observations are clamped, never dropped or propagated *)
  Histogram.observe h (-1.);
  Histogram.observe h Float.nan;
  check int_t "count includes clamped values" 6 (Histogram.count h);
  check bool_t "max is exact" true (Histogram.max_value h = 0.1);
  let p50 = Histogram.quantile h 0.5 and p95 = Histogram.quantile h 0.95 in
  check bool_t "quantiles are ordered" true
    (p50 <= p95 && p95 <= Histogram.max_value h);
  (* log buckets: the p50 upper bound is within 2x of the true median *)
  check bool_t "p50 brackets the median" true (p50 >= 1e-4 && p50 <= 2e-4);
  check bool_t "mean below max" true (Histogram.mean h <= 0.1);
  let names = List.map fst (Histogram.metrics h) in
  check bool_t "metric names carry the wall_ prefix" true
    (List.for_all
       (fun n -> String.length n >= 4 && String.sub n 0 4 = "wall")
       names);
  check bool_t "count metric present" true
    (Metrics.find (Histogram.metrics h) "wall_test_count"
    = Some (Metrics.Int 6))

(* Exact-boundary bucketing: a value sitting exactly on a bucket bound
   lo·2^k belongs to the upper bucket (buckets are lower-inclusive) and
   its immediate float predecessor to the lower one. The previous
   log2-based bucket_of drifted by one whenever log2 rounded across the
   integer at a bound. *)
let test_histogram_boundaries () =
  for k = 0 to Histogram.bucket_count - 2 do
    let b = Histogram.lo *. Float.pow 2. (float_of_int k) in
    check int_t
      (Printf.sprintf "lo*2^%d lands in the upper bucket" k)
      (k + 1) (Histogram.bucket_of b);
    check int_t
      (Printf.sprintf "pred (lo*2^%d) lands in the lower bucket" k)
      k
      (Histogram.bucket_of (Float.pred b))
  done

(* merge/snapshot: the fleet-telemetry aggregation primitives. Merging
   per-session histograms must be indistinguishable from having observed
   everything into one, and a snapshot must stay stable while the
   original keeps observing. *)
let test_histogram_merge () =
  let a = Histogram.make "wall_merge" and b = Histogram.make "wall_merge" in
  let xs_a = [ 1e-4; 2e-4; 5e-2 ] and xs_b = [ 3e-4; 0.2 ] in
  List.iter (Histogram.observe a) xs_a;
  List.iter (Histogram.observe b) xs_b;
  let into = Histogram.make "wall_merge" in
  Histogram.merge ~into a;
  Histogram.merge ~into b;
  let all = Histogram.make "wall_merge" in
  List.iter (Histogram.observe all) (xs_a @ xs_b);
  check int_t "counts add" 5 (Histogram.count into);
  check bool_t "max is the max of both" true (Histogram.max_value into = 0.2);
  check bool_t "mean matches one-histogram run" true
    (Float.abs (Histogram.mean into -. Histogram.mean all) < 1e-12);
  List.iter
    (fun q ->
      check bool_t
        (Printf.sprintf "p%.0f matches one-histogram run" (q *. 100.))
        true
        (Histogram.quantile into q = Histogram.quantile all q))
    [ 0.5; 0.95; 0.99 ];
  let s = Histogram.snapshot into in
  let p50 = Histogram.quantile s 0.5 in
  Histogram.observe into 10.;
  check int_t "snapshot count frozen" 5 (Histogram.count s);
  check bool_t "snapshot quantile frozen" true
    (Histogram.quantile s 0.5 = p50);
  check int_t "original kept observing" 6 (Histogram.count into)

(* Parent linkage: a span started inside another names it as parent (from
   the ambient per-thread context), point events name the innermost open
   span, and the emitted start events carry the same ids — that linkage
   is what lets one JSONL file rebuild a nested timeline. *)
let test_span_nesting () =
  let seen = ref [] in
  Trace.set_sink (Some (fun e -> seen := e :: !seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let outer_ref = ref None and inner_ref = ref None in
      Context.with_trace "nest-1" (fun () ->
          let outer = Span.start "outer" in
          let inner = Span.start "inner" in
          Span.event "tick" [];
          ignore (Span.finish inner : float);
          ignore (Span.finish outer : float);
          outer_ref := Some outer;
          inner_ref := Some inner);
      let outer = Option.get !outer_ref and inner = Option.get !inner_ref in
      check bool_t "outer has no parent" true (outer.Span.parent = None);
      check bool_t "inner parent is outer" true
        (inner.Span.parent = Some outer.Span.id);
      check bool_t "trace id carried" true (inner.Span.trace = Some "nest-1");
      check bool_t "context empty after finish" true
        (Context.current_span () = None);
      let events = List.rev !seen in
      let find_start name =
        List.find
          (fun e ->
            e.Trace.name = "span.start"
            && List.assoc_opt "name" e.Trace.fields
               = Some (Json.String name))
          events
      in
      let field name e = List.assoc_opt name e.Trace.fields in
      check bool_t "emitted inner start names its parent" true
        (field "parent" (find_start "inner") = Some (Json.Int outer.Span.id));
      check bool_t "emitted inner start names its trace" true
        (field "trace" (find_start "inner") = Some (Json.String "nest-1"));
      let tick = List.find (fun e -> e.Trace.name = "tick") events in
      check bool_t "point event parented on the innermost span" true
        (field "parent" tick = Some (Json.Int inner.Span.id));
      check bool_t "point event carries the trace" true
        (field "trace" tick = Some (Json.String "nest-1")))

let prop_histogram_bucket_brackets =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"bucket brackets its value"
       QCheck2.Gen.(map abs_float pfloat)
       (fun v ->
         let b = Histogram.bucket_of v in
         let above_lower = b = 0 || v >= Histogram.upper_bound (b - 1) in
         let below_upper =
           b = Histogram.bucket_count - 1 || v < Histogram.upper_bound b
         in
         above_lower && below_upper))

let test_span_trace () =
  let seen = ref [] in
  Trace.set_sink (Some (fun e -> seen := e :: !seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      check bool_t "enabled with a sink" true (Trace.enabled ());
      let (), wall = Span.time "unit-test" (fun () -> ()) in
      check bool_t "non-negative wall" true (wall >= 0.);
      let names = List.rev_map (fun e -> e.Trace.name) !seen in
      check bool_t "span start+end traced" true
        (names = [ "span.start"; "span.end" ]));
  check bool_t "disabled after unset" true (not (Trace.enabled ()))

(* The evaluator observer adapter: observations become named trace events *)
let test_trace_observation () =
  let doc = Tree.parse "<r><a>x</a><b>y</b></r>" in
  let policy = Policy.make [ Rule.parse ~id:"r1" ~sign:Rule.Permit "/r/a" ] in
  let events = ref [] in
  let observer obs =
    let name, fields = Evaluator.trace_observation obs in
    events := (name, fields) :: !events
  in
  let _ = Evaluator.run_events ~observer ~policy (Tree.to_events doc) in
  let names = List.rev_map fst !events in
  check bool_t "observations traced" true (names <> []);
  check bool_t "decisions appear" true (List.mem "eval.decision" names);
  check bool_t "instances appear" true (List.mem "eval.instance" names)

(* Deterministic counters ------------------------------------------------- *)

(* A fixed document/policy pair: the policy permits only /r/keep, so the
   evaluator must skip the <blob> subtree at its open event. All asserted
   values are exact: they derive from byte-exact encodings and counter
   increments, not from timing. If an intentional encoder/evaluator change
   shifts them, re-freeze by printing the metrics of this very pair. *)
let known_doc () =
  Tree.parse
    "<r><blob><x>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</x><y>bbbb</y></blob><keep>hello</keep></r>"

let known_policy () =
  Policy.make [ Rule.parse ~id:"k1" ~sign:Rule.Permit "/r/keep" ]

let test_decoder_counters () =
  let doc = known_doc () in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr doc in
  let decoder = Decoder.of_string encoded in
  let result =
    Evaluator.run ~policy:(known_policy ())
      (Xmlac_core.Input.of_decoder decoder)
  in
  let s = Decoder.stats decoder in
  check int_t "one subtree skipped" 1 s.Decoder.subtree_skips;
  check int_t "skipped bytes" 44 s.Decoder.bytes_skipped;
  check int_t "events decoded" 7 s.Decoder.events_decoded;
  check int_t "no readback" 0 s.Decoder.readback_subtrees;
  check int_t "evaluator saw the skip" 1
    result.Evaluator.stats.Evaluator.open_skips;
  (* the metrics snapshot mirrors the record *)
  check bool_t "metrics mirror stats" true
    (Metrics.find (Decoder.stats_metrics s) "subtree_skips"
    = Some (Metrics.Int 1))

let test_session_counters () =
  let doc = known_doc () in
  let config = Session.default_config () in
  let published = Session.publish config ~layout:Layout.Tcsbr doc in
  let m = Session.evaluate config published (known_policy ()) in
  check int_t "one subtree skipped" 1 m.Session.index.Decoder.subtree_skips;
  check int_t "blocks decrypted" 9
    m.Session.counters.Xmlac_soe.Channel.blocks_decrypted;
  check int_t "hashes verified" 1
    m.Session.counters.Xmlac_soe.Channel.hashes_verified;
  let metrics = Session.metrics m in
  check bool_t "namespaced eval metric" true
    (Metrics.find metrics "eval.open_skips" = Some (Metrics.Int 1));
  check bool_t "namespaced channel metric" true
    (Metrics.find metrics "channel.blocks_decrypted" = Some (Metrics.Int 9));
  check bool_t "wall metric present" true
    (Metrics.find metrics "wall_s" <> None);
  (* the output itself is what the policy permits *)
  check bool_t "view is /r/keep only" true
    (Evaluator.view_tree
       { Evaluator.events = m.Session.events; stats = m.Session.eval }
    = Some (Tree.parse "<r><keep>hello</keep></r>"))

(* Bench report + gate ---------------------------------------------------- *)

let sample_record ?(tcsbr = 2.) ?(lwb = 1.) () =
  {
    Bench_report.name = "fig9";
    profile = "Doctor";
    metrics =
      Metrics.
        [
          float "bf_total_s" 10.;
          float "tcsbr_total_s" tcsbr;
          float "lwb_total_s" lwb;
          float "wall_s" 0.5;
        ];
    wall_s = 0.1;
  }

let sample_report ?tcsbr ?lwb () =
  Bench_report.make ~mode:"quick" [ sample_record ?tcsbr ?lwb () ]

let test_report_roundtrip () =
  let r = sample_report () in
  match Bench_report.parse (Bench_report.to_string r) with
  | Error e -> Alcotest.failf "report reparse: %s" e
  | Ok r' ->
      check bool_t "round-trips exactly" true (r = r');
      (* and the gate accepts the reparsed copy against the original *)
      check int_t "self-gate is clean" 0
        (List.length (Gate.check ~baseline:r ~current:r' ()))

let test_gate_drift () =
  let baseline = sample_report () in
  let drifted = sample_report ~tcsbr:2.5 () in
  let violations = Gate.check ~baseline ~current:drifted () in
  check int_t "25% drift caught at 10% tolerance" 1 (List.length violations);
  check int_t "but passes at 30% tolerance" 0
    (List.length (Gate.check ~tolerance:0.3 ~baseline ~current:drifted ()));
  (* wall-clock metrics never gate *)
  let wall_only =
    Bench_report.make ~mode:"quick"
      [
        {
          (sample_record ()) with
          Bench_report.metrics =
            Metrics.
              [
                float "bf_total_s" 10.;
                float "tcsbr_total_s" 2.;
                float "lwb_total_s" 1.;
                float "wall_s" 99.;
              ];
        };
      ]
  in
  check int_t "wall drift ignored" 0
    (List.length (Gate.check ~baseline ~current:wall_only ()))

(* histogram metrics are machine-dependent latencies; any metric whose
   final dotted segment starts with "wall" must never gate *)
let test_gate_hist_exempt () =
  let with_hist p95 =
    Bench_report.make ~mode:"quick"
      [
        {
          (sample_record ()) with
          Bench_report.metrics =
            (sample_record ()).Bench_report.metrics
            @ Metrics.
                [
                  float "tcsbr.eval.wall_event_p95_s" p95;
                  int "tcsbr.eval.wall_event_count" 100;
                ];
        };
      ]
  in
  check int_t "histogram drift ignored" 0
    (List.length
       (Gate.check ~baseline:(with_hist 0.001) ~current:(with_hist 0.9) ()))

let test_gate_missing () =
  let baseline = sample_report () in
  let empty = Bench_report.make ~mode:"quick" [] in
  check bool_t "missing record flagged" true
    (Gate.check ~baseline ~current:empty () <> []);
  let full = Bench_report.make ~mode:"full" [ sample_record () ] in
  check bool_t "mode mismatch flagged" true
    (Gate.check ~baseline ~current:full () <> [])

let test_gate_shape () =
  (* identical baseline and current, but the current report's own ordering
     is broken: LWB must lower-bound TCSBR *)
  let broken = sample_report ~tcsbr:1. ~lwb:2. () in
  let violations = Gate.check ~baseline:broken ~current:broken () in
  check bool_t "shape violation fires without drift" true (violations <> []);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_t "violation names the metric" true
    (List.exists
       (fun v ->
         v.Gate.where = "fig9/Doctor"
         && contains (Format.asprintf "%a" Gate.pp_violation v) "lwb_total_s")
       violations)

(* The committed baseline: parses under this build's schema and gates
   cleanly against itself (drift is trivially zero; shape orderings must
   genuinely hold in the committed numbers). *)
(* resolves under both `dune runtest` (cwd = _build/default/test) and
   `dune exec test/test_obs.exe` (cwd = repo root): the binary sits in
   _build/default/test, one level below the staged baseline *)
let baseline_path =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "../BENCH_baseline.json"

let test_committed_baseline () =
  let contents =
    In_channel.with_open_bin baseline_path In_channel.input_all
  in
  match Bench_report.parse contents with
  | Error e -> Alcotest.failf "BENCH_baseline.json: %s" e
  | Ok report ->
      check string_t "quick mode" "quick" report.Bench_report.mode;
      check bool_t "has records" true (report.Bench_report.records <> []);
      let violations = Gate.check ~baseline:report ~current:report () in
      List.iter
        (fun v -> Printf.printf "baseline violation: %s: %s\n" v.Gate.where v.Gate.detail)
        violations;
      check int_t "baseline self-gates clean" 0 (List.length violations);
      (* the latency histograms ride along in the fig9 records *)
      let fig9 =
        List.find
          (fun r -> r.Bench_report.name = "fig9")
          report.Bench_report.records
      in
      check bool_t "event histogram in baseline" true
        (Metrics.find fig9.Bench_report.metrics "tcsbr.eval.wall_event_count"
        <> None);
      check bool_t "crypto histogram in baseline" true
        (Metrics.find fig9.Bench_report.metrics
           "tcsbr.channel.wall_crypto_count"
        <> None)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "float format" `Quick test_json_float_format;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "roundtrip" `Quick test_metrics_roundtrip;
          Alcotest.test_case "prefix+render" `Quick test_metrics_prefix_render;
        ] );
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "span clamp" `Quick test_span_clamp;
          Alcotest.test_case "span end on raise" `Quick test_span_end_on_raise;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram boundaries" `Quick
            test_histogram_boundaries;
          Alcotest.test_case "histogram merge+snapshot" `Quick
            test_histogram_merge;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          prop_histogram_bucket_brackets;
          Alcotest.test_case "span+trace" `Quick test_span_trace;
          Alcotest.test_case "trace observation" `Quick test_trace_observation;
        ] );
      ( "deterministic counters",
        [
          Alcotest.test_case "decoder" `Quick test_decoder_counters;
          Alcotest.test_case "session" `Quick test_session_counters;
        ] );
      ( "gate",
        [
          Alcotest.test_case "report roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "drift" `Quick test_gate_drift;
          Alcotest.test_case "histogram exempt" `Quick test_gate_hist_exempt;
          Alcotest.test_case "missing" `Quick test_gate_missing;
          Alcotest.test_case "shape" `Quick test_gate_shape;
          Alcotest.test_case "committed baseline" `Quick test_committed_baseline;
        ] );
    ]
