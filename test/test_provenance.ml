(* Tests for the decision-provenance subsystem: prov.v1 JSON round trips,
   byte-identical trace determinism, oracle-checked audit replay over
   random document/policy pairs, tamper detection, the hospital example's
   `xacml explain` reports, and the fuzz harness's crasher provenance
   files. *)

module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Encoder = Xmlac_skip_index.Encoder
module Decoder = Xmlac_skip_index.Decoder
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Evaluator = Xmlac_core.Evaluator
module Input = Xmlac_core.Input
module Provenance = Xmlac_core.Provenance
module Audit = Xmlac_core.Audit
module Oracle = Xmlac_core.Oracle
module Dom_eval = Xmlac_xpath.Dom_eval
module Session = Xmlac_soe.Session
module Json = Xmlac_obs.Json
module Trace = Xmlac_obs.Trace
module W = Xmlac_workload

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* canonicalize as the publishing pipeline does: attributes become elements
   and the tree takes one serialize/parse round trip, so the oracle judges
   the document the evaluator actually sees *)
let canonical doc =
  Tree.parse (Xmlac_xml.Writer.tree_to_string (Tree.attributes_to_elements doc))

let decoder_input doc =
  Input.of_decoder (Decoder.of_string (Encoder.encode ~layout:Layout.Tcsbr doc))

let run_with_provenance ?query ~policy input =
  let coll = Provenance.collector () in
  let result = Evaluator.run ?query ~provenance:coll ~policy input in
  (Provenance.records coll, result)

let mem_id ids id = List.exists (fun i -> Dom_eval.compare_id i id = 0) ids

(* JSON round trip --------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc = canonical (W.Hospital.generate_sized ~seed:7 ~target_bytes:8_000 ()) in
  let policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician in
  let records, _ = run_with_provenance ~policy (decoder_input doc) in
  check bool_t "has node records" true
    (List.exists (function Provenance.Node _ -> true | _ -> false) records);
  check bool_t "has skip records" true
    (List.exists (function Provenance.Skip _ -> true | _ -> false) records);
  List.iter
    (fun r ->
      let j = Provenance.record_to_json r in
      match Json.parse (Json.to_string j) with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok j' -> (
          match Provenance.record_of_json j' with
          | Ok r' ->
              if r' <> r then Alcotest.fail "record changed across round trip"
          | Error e -> Alcotest.failf "record_of_json: %s" e))
    records

(* Trace determinism -------------------------------------------------------- *)

(* drop top-level fields whose name starts with "wall", plus the trace
   linkage fields (span ids are process-unique by design, timestamps are
   clock reads) — the only nondeterministic payload a trace line may
   carry *)
let strip_wall line =
  match Json.parse line with
  | Ok (Json.Obj fields) ->
      Json.to_string
        (Json.Obj
           (List.filter
              (fun (name, _) ->
                (not
                   (String.length name >= 4 && String.sub name 0 4 = "wall"))
                && not
                     (List.mem name [ "ts"; "span"; "parent"; "trace" ]))
              fields))
  | _ -> line

(* the full pipeline (publish, SOE channel, evaluator) into a JSONL trace
   file, exactly as `xacml view --trace-out` does *)
let capture_trace doc policy =
  let tmp = Filename.temp_file "xmlac_prov" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Trace.with_jsonl_file tmp (fun () ->
          let name, fields = Provenance.meta_event () in
          Trace.emit name fields;
          let coll = Provenance.collector () in
          let config = Session.default_config () in
          let published = Session.publish config ~layout:Layout.Tcsbr doc in
          let (_ : Session.measurement) =
            Session.evaluate ~provenance:coll config published policy
          in
          List.iter
            (fun r ->
              let name, fields = Provenance.record_event r in
              Trace.emit name fields)
            (Provenance.records coll));
      In_channel.with_open_bin tmp In_channel.input_all)

let test_trace_determinism () =
  let doc = canonical (W.Hospital.generate_sized ~seed:3 ~target_bytes:6_000 ()) in
  let policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician in
  let t1 = capture_trace doc policy in
  let t2 = capture_trace doc policy in
  let norm t =
    String.concat "\n" (List.map strip_wall (String.split_on_char '\n' t))
  in
  check bool_t "byte-identical after stripping wall fields" true
    (norm t1 = norm t2);
  check bool_t "meta header present" true
    (contains t1 "\"schema\":\"prov.v1\"");
  check bool_t "node records present" true
    (contains t1 "\"event\":\"prov.node\"");
  check bool_t "chunk records present" true
    (contains t1 "\"event\":\"prov.chunk\"")

(* Audit replay over random pairs ------------------------------------------- *)

let test_random_replay () =
  let kinds = W.Datasets.[ Wsu; Sigmod; Treebank; Hospital_doc ] in
  let pairs = ref 0 in
  List.iter
    (fun kind ->
      for seed = 0 to 12 do
        let doc =
          canonical (W.Datasets.generate kind ~seed ~target_bytes:700)
        in
        let policy = W.Rule_gen.generate ~seed doc in
        let records, _ = run_with_provenance ~policy (decoder_input doc) in
        (match Audit.check ~policy ~doc records with
        | [] -> ()
        | v :: _ ->
            Alcotest.failf "%s seed %d: %s: %s" (W.Datasets.name kind) seed
              v.Audit.where v.Audit.detail);
        incr pairs
      done)
    kinds;
  check bool_t "at least 50 pairs audited" true (!pairs >= 50)

let test_tamper_detected () =
  let doc = canonical (W.Hospital.generate_sized ~seed:7 ~target_bytes:6_000 ()) in
  let policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician in
  let records, _ =
    run_with_provenance ~policy (Input.of_events (Tree.to_events doc))
  in
  check int_t "clean trace audits clean" 0
    (List.length (Audit.check ~policy ~doc records));
  (* flip the delivery verdict on the first node record *)
  let flipped = ref false in
  let tampered =
    List.map
      (function
        | Provenance.Node n when not !flipped ->
            flipped := true;
            Provenance.Node
              {
                n with
                Provenance.n_delivered =
                  (match n.Provenance.n_delivered with
                  | Provenance.Permit -> Provenance.Deny
                  | _ -> Provenance.Permit);
              }
        | r -> r)
      records
  in
  check bool_t "flipped verdict caught" true
    (Audit.check ~policy ~doc tampered <> []);
  (* drop the root's node record: nothing skips over the root, so the
     completeness pass must flag the hole *)
  let dropped =
    List.filter
      (function Provenance.Node n -> n.Provenance.n_path <> [] | _ -> true)
      records
  in
  check bool_t "missing record caught" true
    (Audit.check ~policy ~doc dropped <> [])

(* The hospital example's explanations -------------------------------------- *)

let test_hospital_explain () =
  let doc = canonical (W.Hospital.generate_sized ~seed:7 ~target_bytes:20_000 ()) in
  let policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician in
  let records, _ =
    run_with_provenance ~policy (Input.of_events (Tree.to_events doc))
  in
  let delivered = Oracle.delivered_ids policy doc in
  let select s = Dom_eval.select (Xmlac_xpath.Parse.path s) doc in
  (* a Details element on another physician's act: denied by D3 *)
  (match
     List.find_opt (fun id -> not (mem_id delivered id)) (select "//Act/Details")
   with
  | None ->
      Alcotest.fail "expected a denied //Act/Details in the generated document"
  | Some id ->
      let report = Audit.explain ~records id in
      check bool_t "denied report says DENIED" true (contains report "DENIED");
      check bool_t "names the denying rule" true
        (contains report "winning rule: D3 (deny)");
      check bool_t "shows denial-takes-precedence" true
        (contains report "denial takes precedence"));
  (* an administrative part of a folder: delivered under D1 *)
  match List.find_opt (mem_id delivered) (select "//Folder/Admin") with
  | None -> Alcotest.fail "expected a delivered //Folder/Admin"
  | Some id ->
      let report = Audit.explain ~records id in
      check bool_t "delivered report says DELIVERED" true
        (contains report "DELIVERED");
      check bool_t "names the permitting rule" true
        (contains report "winning rule: D1 (permit)");
      check bool_t "shows the permit step" true
        (contains report "positive rule D1 applies")

(* Fuzz crasher provenance --------------------------------------------------- *)

let test_fuzz_crasher_provenance () =
  let module H = Xmlac_fuzz.Harness in
  let module C = Xmlac_crypto.Secure_container in
  let doc = Tree.parse "<r><a>x</a><b>y</b></r>" in
  let policy = Policy.make [ Rule.parse ~id:"p1" ~sign:Rule.Permit "/r/a" ] in
  (* the harness's fixed campaign key, so the replay decrypts the bytes *)
  let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-fuzz-24-byte-key!!" in
  let bytes =
    C.to_bytes
      (C.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme:C.Ecb_mht ~key
         (Encoder.encode ~layout:Layout.Tcsbr doc))
  in
  let report =
    {
      H.runs = 1;
      mutated = 0;
      accepted = 0;
      rejected = 0;
      failures =
        [
          {
            H.boundary = "channel-eval/ECB-MHT";
            mutation = "seed";
            detail = "synthetic failure for save_failures";
            input = bytes;
            policy_src = Some (Policy.to_string policy);
          };
        ];
      per_boundary = [];
      wall_s = 0.;
    }
  in
  let dir = Filename.temp_file "xmlac_corpus" "" in
  Sys.remove dir;
  let saved = H.save_failures ~dir report in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove saved;
      Sys.rmdir dir)
    (fun () ->
      check int_t "bytes and provenance written" 2 (List.length saved);
      let prov =
        List.find (fun p -> Filename.check_suffix p ".prov.jsonl") saved
      in
      let contents = In_channel.with_open_bin prov In_channel.input_all in
      check bool_t "meta header present" true
        (contains contents "\"schema\":\"prov.v1\"");
      check bool_t "node records captured" true
        (contains contents "\"event\":\"prov.node\"");
      check bool_t "chunk verdicts captured" true
        (contains contents "\"event\":\"prov.chunk\""))

let () =
  Alcotest.run "provenance"
    [
      ( "schema",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
        ] );
      ( "audit",
        [
          Alcotest.test_case "random replay" `Quick test_random_replay;
          Alcotest.test_case "tamper detected" `Quick test_tamper_detected;
        ] );
      ( "explain",
        [ Alcotest.test_case "hospital example" `Quick test_hospital_explain ] );
      ( "fuzz",
        [
          Alcotest.test_case "crasher provenance" `Quick
            test_fuzz_crasher_provenance;
        ] );
    ]
