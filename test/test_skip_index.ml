(* Tests for the Skip index: bit I/O, all five layouts, decoding, skipping,
   descendant-tag sets, subtree handles, storage statistics. *)

open Xmlac_skip_index
module Tree = Xmlac_xml.Tree
module Event = Xmlac_xml.Event

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qtest ?(count = 300) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

(* Bit I/O ---------------------------------------------------------------- *)

let test_bits_for () =
  check int_t "value 0" 0 (Bitio.bits_for_value 0);
  check int_t "value 1" 1 (Bitio.bits_for_value 1);
  check int_t "value 255" 8 (Bitio.bits_for_value 255);
  check int_t "value 256" 9 (Bitio.bits_for_value 256);
  check int_t "index 1" 0 (Bitio.bits_for_index 1);
  check int_t "index 2" 1 (Bitio.bits_for_index 2);
  check int_t "index 3" 2 (Bitio.bits_for_index 3);
  check int_t "index 250" 8 (Bitio.bits_for_index 250)

let test_bitio_roundtrip_manual () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w ~width:2 3;
  Bitio.Writer.bits w ~width:5 17;
  Bitio.Writer.bits w ~width:13 4099;
  Bitio.Writer.align w;
  Bitio.Writer.varint w 300;
  Bitio.Writer.bytes w "xy";
  Bitio.Writer.bits w ~width:1 1;
  let s = Bitio.Writer.contents w in
  let r = Bitio.Reader.of_string s in
  check int_t "2 bits" 3 (Bitio.Reader.bits r ~width:2);
  check int_t "5 bits" 17 (Bitio.Reader.bits r ~width:5);
  check int_t "13 bits" 4099 (Bitio.Reader.bits r ~width:13);
  Bitio.Reader.align r;
  check int_t "varint" 300 (Bitio.Reader.varint r);
  check Alcotest.string "bytes" "xy" (Bitio.Reader.bytes r 2);
  check int_t "trailing bit" 1 (Bitio.Reader.bits r ~width:1)

let prop_bitio_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (int_range 1 30 >>= fun width ->
         int_range 0 ((1 lsl width) - 1) >>= fun v -> return (width, v)))
  in
  qtest "bit sequences roundtrip" gen (fun fields ->
      let w = Bitio.Writer.create () in
      List.iter (fun (width, v) -> Bitio.Writer.bits w ~width v) fields;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      List.for_all (fun (width, v) -> Bitio.Reader.bits r ~width = v) fields)

let prop_varint_roundtrip =
  qtest "varints roundtrip with declared length"
    QCheck2.Gen.(oneof [ int_range 0 1000; int_range 0 1000000000 ])
    (fun v ->
      let w = Bitio.Writer.create () in
      Bitio.Writer.varint w v;
      let s = Bitio.Writer.contents w in
      String.length s = Bitio.varint_length v
      && Bitio.Reader.varint (Bitio.Reader.of_string s) = v)

let test_reader_seek () =
  let r = Bitio.Reader.of_string "abcdef" in
  Bitio.Reader.seek r 3;
  check Alcotest.string "after seek" "def" (Bitio.Reader.bytes r 3);
  check bool_t "at end" true (Bitio.Reader.at_end r)

let test_reader_bounds () =
  let r = Bitio.Reader.of_string "a" in
  ignore (Bitio.Reader.bits r ~width:8);
  Alcotest.check_raises "past end"
    (Error.Error (Error.Corrupt "read past end of input"))
    (fun () -> ignore (Bitio.Reader.bits r ~width:1))

(* Dictionary ------------------------------------------------------------- *)

let test_dict () =
  let d = Dict.of_tags [ "b"; "a"; "b"; "c" ] in
  check int_t "size" 3 (Dict.size d);
  check int_t "index a" 0 (Dict.index d "a");
  check Alcotest.string "tag 2" "c" (Dict.tag d 2);
  check bool_t "missing" true (Dict.index_opt d "z" = None);
  let w = Bitio.Writer.create () in
  Dict.write w d;
  let d' = Dict.read (Bitio.Reader.of_string (Bitio.Writer.contents w)) in
  check int_t "roundtrip size" 3 (Dict.size d');
  check int_t "roundtrip index" 1 (Dict.index d' "b")

(* Encode/decode ---------------------------------------------------------- *)

let decodable = [ Layout.Tc; Layout.Tcs; Layout.Tcsb; Layout.Tcsbr ]

let drain dec =
  let rec go acc =
    match Decoder.next dec with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let strip_attrs evs =
  List.map
    (function
      | Event.Start { tag; _ } -> Event.Start { tag; attributes = [] }
      | e -> e)
    evs

let roundtrip_layout layout tree =
  let encoded = Encoder.encode ~layout tree in
  let dec = Decoder.of_string encoded in
  let evs = drain dec in
  let expected = strip_attrs (Tree.to_events tree) in
  List.length evs = List.length expected
  && List.for_all2 Event.equal evs expected

let sample_trees =
  [
    Tree.parse "<a/>";
    Tree.parse "<a>text</a>";
    Tree.parse "<a><b/><b>x</b><c><d>yy</d></c></a>";
    Tree.parse "<r><a><b>1</b></a><a><b>2</b><c/></a>mixed</r>";
    Tree.element "deep"
      [ Tree.element "deep" [ Tree.element "deep" [ Tree.text "v" ] ] ];
  ]

let test_roundtrips () =
  List.iter
    (fun layout ->
      List.iteri
        (fun i tree ->
          if not (roundtrip_layout layout tree) then
            Alcotest.failf "%s failed on sample %d" (Layout.to_string layout) i)
        sample_trees)
    decodable

let prop_roundtrip layout =
  qtest
    (Layout.to_string layout ^ " decode ∘ encode = id")
    Testkit.gen_tree ~print:Testkit.tree_print
    (fun tree -> roundtrip_layout layout tree)

let test_nc_is_xml () =
  let tree = Tree.parse "<a><b>x</b></a>" in
  let encoded = Encoder.encode ~layout:Layout.Nc tree in
  check bool_t "NC decoder refuses" true
    (match Decoder.of_string encoded with
    | exception Error.Error (Error.Corrupt _) -> true
    | _ -> false);
  let hdr = Encoder.read_header (Bitio.Reader.of_string encoded) in
  check int_t "element count" 2 hdr.Encoder.element_count;
  let xml =
    String.sub encoded hdr.Encoder.body_start hdr.Encoder.body_size
  in
  check bool_t "NC body reparses" true (Tree.equal tree (Tree.parse xml))

let test_attributes_rejected () =
  let tree = Tree.parse "<a x=\"1\"/>" in
  Alcotest.check_raises "attributes unsupported"
    (Invalid_argument "Skip_index.Encoder: attributes are not representable")
    (fun () -> ignore (Encoder.encode ~layout:Layout.Tcsbr tree))

(* Descendant-tag sets ---------------------------------------------------- *)

let expected_desctags tree =
  (* map from element start order to its strict descendant tag set *)
  let rec go acc node =
    match node with
    | Tree.Text _ -> (acc, [])
    | Tree.Element { children; _ } ->
        let acc, sets =
          List.fold_left
            (fun (acc, sets) child ->
              let acc, s = go acc child in
              ( acc,
                match child with
                | Tree.Element { tag; _ } -> (tag :: s) :: sets
                | Tree.Text _ -> sets ))
            (acc, []) children
        in
        let own = List.sort_uniq compare (List.concat sets) in
        (acc @ [ own ], own)
  in
  (* pre-order: rebuild by walking again *)
  let rec pre acc node =
    match node with
    | Tree.Text _ -> acc
    | Tree.Element { children; _ } ->
        let own =
          let rec collect n =
            match n with
            | Tree.Text _ -> []
            | Tree.Element { tag = _; children; _ } ->
                List.concat_map
                  (fun c ->
                    match c with
                    | Tree.Element { tag; _ } -> tag :: collect c
                    | Tree.Text _ -> [])
                  children
          in
          List.sort_uniq compare (collect node)
        in
        List.fold_left pre (acc @ [ own ]) children
  in
  ignore go;
  pre [] tree

let desctags_reported layout tree =
  let encoded = Encoder.encode ~layout tree in
  let dec = Decoder.of_string encoded in
  let rec go acc =
    match Decoder.next dec with
    | None -> List.rev acc
    | Some (Event.Start _) ->
        let tags = Decoder.descendant_tags dec in
        go (Option.map (List.sort compare) tags :: acc)
    | Some _ -> go acc
  in
  go []

let test_desctags_tcsbr () =
  let tree = Tree.parse "<a><b><c>x</c></b><d/>t</a>" in
  let reported = desctags_reported Layout.Tcsbr tree in
  let expected = List.map Option.some (expected_desctags tree) in
  check bool_t "desc tags match" true (reported = expected)

let prop_desctags layout =
  qtest
    (Layout.to_string layout ^ " advertises exact descendant sets")
    Testkit.gen_tree ~print:Testkit.tree_print
    (fun tree ->
      desctags_reported layout tree
      = List.map Option.some (expected_desctags tree))

let test_desctags_absent_for_tcs () =
  let tree = Tree.parse "<a><b><c>x</c></b></a>" in
  (* intermediate nodes have no bitmaps in TCS; leaves are still known *)
  let reported = desctags_reported Layout.Tcs tree in
  check bool_t "a and b unknown, c known-empty" true
    (reported = [ None; None; Some [] ])

(* Skipping --------------------------------------------------------------- *)

let test_skip_subtree () =
  let tree = Tree.parse "<r><big><x>1</x><y>2</y></big><small>s</small></r>" in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  let dec = Decoder.of_string encoded in
  let seen = ref [] in
  let rec go () =
    match Decoder.next dec with
    | None -> ()
    | Some (Event.Start { tag = "big"; _ }) ->
        Decoder.skip dec;
        go ()
    | Some e ->
        seen := Event.to_string e :: !seen;
        go ()
  in
  go ();
  check (Alcotest.list Alcotest.string) "skipped content invisible"
    [ "<r>"; "</big>"; "<small>"; "\"s\""; "</small>"; "</r>" ]
    (List.rev !seen)

let prop_skip_preserves_siblings =
  qtest ~count:200 "skipping any first child leaves the rest intact"
    Testkit.gen_tree ~print:Testkit.tree_print (fun tree ->
      let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
      let with_skip =
        let dec = Decoder.of_string encoded in
        let skipped_one = ref false in
        let rec go depth acc =
          match Decoder.next dec with
          | None -> List.rev acc
          | Some (Event.Start _ as e) when depth = 1 && not !skipped_one ->
              skipped_one := true;
              Decoder.skip dec;
              go depth (e :: acc)
          | Some e -> go (Event.depth_after depth e) (e :: acc)
        in
        go 0 []
      in
      let without_skip =
        (* reference: drop the first top-level element subtree's inner events *)
        let dec = Decoder.of_string encoded in
        let rec go depth ~dropping ~dropped acc =
          match Decoder.next dec with
          | None -> List.rev acc
          | Some e ->
              let depth' = Event.depth_after depth e in
              if dropping then
                if depth' = 1 then
                  (* the End that closes the dropped subtree *)
                  go depth' ~dropping:false ~dropped:true (e :: acc)
                else go depth' ~dropping ~dropped acc
              else if (not dropped) && depth = 1 && depth' = 2 then
                (* first top-level Start: keep it, drop its content *)
                go depth' ~dropping:true ~dropped (e :: acc)
              else go depth' ~dropping ~dropped (e :: acc)
        in
        go 0 ~dropping:false ~dropped:false []
      in
      List.length with_skip = List.length without_skip
      && List.for_all2 Event.equal with_skip without_skip)

let test_skip_not_available_in_tc () =
  let tree = Tree.parse "<a><b/></a>" in
  let dec = Decoder.of_string (Encoder.encode ~layout:Layout.Tc tree) in
  check bool_t "cannot skip" false (Decoder.can_skip dec);
  ignore (Decoder.next dec);
  ignore (Decoder.next dec);
  Alcotest.check_raises "skip refused"
    (Invalid_argument "Skip_index.Decoder: this layout cannot skip")
    (fun () -> Decoder.skip dec)

let test_skip_requires_start_position () =
  let tree = Tree.parse "<a>t<b/></a>" in
  let dec = Decoder.of_string (Encoder.encode ~layout:Layout.Tcsbr tree) in
  ignore (Decoder.next dec);
  ignore (Decoder.next dec);
  (* after a Text event *)
  Alcotest.check_raises "skip refused"
    (Invalid_argument "Skip_index.Decoder: not positioned right after a Start event")
    (fun () -> Decoder.skip dec)

(* Subtree handles (pending read-back) ------------------------------------ *)

let test_subtree_handle_readback () =
  let tree = Tree.parse "<r><keep>1</keep><pend><in1>x</in1><in2/></pend><after/></r>" in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  let dec = Decoder.of_string encoded in
  let handle = ref None in
  let rec go () =
    match Decoder.next dec with
    | None -> ()
    | Some (Event.Start { tag = "pend"; _ }) ->
        handle := Some (Decoder.subtree_handle dec);
        Decoder.skip dec;
        go ()
    | Some _ -> go ()
  in
  go ();
  match !handle with
  | None -> Alcotest.fail "no handle captured"
  | Some h ->
      check Alcotest.string "handle tag" "pend" (Decoder.handle_tag h);
      let evs = Decoder.read_subtree dec h in
      let expected =
        strip_attrs (Tree.to_events (Tree.parse "<pend><in1>x</in1><in2/></pend>"))
      in
      check bool_t "read-back equals subtree" true
        (List.length evs = List.length expected
        && List.for_all2 Event.equal evs expected)

let prop_handle_readback =
  qtest ~count:200 "any first-child handle reads back exactly"
    Testkit.gen_tree ~print:Testkit.tree_print (fun tree ->
      let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
      let dec = Decoder.of_string encoded in
      (* capture handle of the first top-level element child, if any *)
      let rec hunt depth =
        match Decoder.next dec with
        | None -> None
        | Some (Event.Start { tag; _ }) when depth = 1 ->
            Some (tag, Decoder.subtree_handle dec)
        | Some e -> hunt (Event.depth_after depth e)
      in
      match hunt 0 with
      | None -> true
      | Some (tag, h) ->
          let evs = Decoder.read_subtree dec h in
          let expected =
            match tree with
            | Tree.Element { children; _ } ->
                List.find_map
                  (function
                    | Tree.Element { tag = t; _ } as sub when t = tag ->
                        Some (strip_attrs (Tree.to_events sub))
                    | _ -> None)
                  children
            | _ -> None
          in
          (match expected with
          | Some exp ->
              List.length evs = List.length exp && List.for_all2 Event.equal evs exp
          | None -> false))

let test_rest_handle_and_read_range () =
  let tree = Tree.parse "<r><a>1</a><b>2</b><c>3</c></r>" in
  let dec = Decoder.of_string (Encoder.encode ~layout:Layout.Tcsbr tree) in
  (* consume <r><a>1</a>: the rest of r's content is <b>2</b><c>3</c> *)
  let rec consume n = if n > 0 then (ignore (Decoder.next dec); consume (n - 1)) in
  consume 4;
  (match Decoder.rest_handle dec with
  | None -> Alcotest.fail "rest handle expected"
  | Some h ->
      check bool_t "range has positive size" true (Decoder.range_size h > 0);
      let evs = Decoder.read_range dec h in
      let expected =
        strip_attrs
          (Tree.to_events (Tree.parse "<x><b>2</b><c>3</c></x>"))
        |> List.filter (fun e -> Event.tag e <> Some "x")
      in
      check bool_t "range decodes the remaining siblings" true
        (List.length evs = List.length expected
        && List.for_all2 Event.equal evs expected));
  (* skip the rest: only </r> remains *)
  Decoder.skip_rest dec;
  (match Decoder.next dec with
  | Some (Event.End "r") -> ()
  | _ -> Alcotest.fail "expected </r> after skip_rest");
  check bool_t "stream exhausted" true (Decoder.next dec = None)

let test_rest_handle_when_nothing_open () =
  let tree = Tree.parse "<r><a>1</a></r>" in
  let dec = Decoder.of_string (Encoder.encode ~layout:Layout.Tcsbr tree) in
  (* before the first event there is no open element *)
  check bool_t "no handle before the root opens" true
    (Decoder.rest_handle dec = None)

let test_decoder_rejects_corrupt_input () =
  let tree = Tree.parse "<r><a>hello</a><b>world</b></r>" in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  (* truncation *)
  (match
     let dec = Decoder.of_string (String.sub encoded 0 (String.length encoded - 3)) in
     drain dec
   with
  | exception Error.Error (Error.Corrupt _) -> ()
  | _ -> Alcotest.fail "truncated body accepted");
  (* bad magic *)
  (match Decoder.of_string ("ZZZZ" ^ String.sub encoded 4 (String.length encoded - 4)) with
  | exception Error.Error (Error.Corrupt _) -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* unknown layout byte *)
  let b = Bytes.of_string encoded in
  Bytes.set b 4 '\255';
  match Decoder.of_string (Bytes.to_string b) with
  | exception Error.Error (Error.Corrupt _) -> ()
  | _ -> Alcotest.fail "unknown layout accepted"

let test_fixpoint_on_power_of_two_boundaries () =
  (* documents whose subtree sizes hover around powers of two exercise the
     width fixpoint: text lengths 120..140 straddle the 127/128 boundary of
     a 7-vs-8-bit size field *)
  for len = 120 to 140 do
    let tree =
      Tree.element "r"
        [ Tree.element "a" [ Tree.text (String.make len 'x') ];
          Tree.element "b" [ Tree.text "tail" ] ]
    in
    if not (roundtrip_layout Layout.Tcsbr tree) then
      Alcotest.failf "fixpoint roundtrip failed at text length %d" len
  done

let test_fixpoint_widening_path () =
  (* bodies swept across 2^k boundaries force the fixpoint through its
     widening rounds: a subtree size crossing a varint-width boundary grows
     the header it is stored in, which can push the enclosing sizes — and
     the body's own size width — over the next boundary in turn. Every
     sweep point must converge to a typed Ok and roundtrip exactly. *)
  List.iter
    (fun base ->
      for delta = -24 to 24 do
        let len = max 2 (base + delta) in
        let tree =
          Tree.element "r"
            [
              Tree.element "a" [ Tree.text (String.make (len / 2) 'x') ];
              Tree.element "b"
                [ Tree.element "c" [ Tree.text (String.make (len - (len / 2)) 'y') ] ];
            ]
        in
        List.iter
          (fun layout ->
            (match Encoder.encode_result ~layout tree with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "encode_result %s at %d: %s"
                  (Layout.to_string layout) len (Error.to_string e));
            if not (roundtrip_layout layout tree) then
              Alcotest.failf "%s widening roundtrip failed at %d"
                (Layout.to_string layout) len)
          [ Layout.Tcs; Layout.Tcsb; Layout.Tcsbr ]
      done)
    [ 128; 256; 512; 1024 ]

let test_huge_fanout_roundtrip () =
  let tree =
    Tree.element "root"
      (List.init 3000 (fun i ->
           Tree.element (Printf.sprintf "t%d" (i mod 40)) [ Tree.text (string_of_int i) ]))
  in
  List.iter
    (fun layout ->
      if not (roundtrip_layout layout tree) then
        Alcotest.failf "%s failed on wide document" (Layout.to_string layout))
    decodable

(* Updates ------------------------------------------------------------------ *)

let test_update_apply_semantics () =
  let t = Tree.parse "<a><b>x</b><c><d>y</d></c></a>" in
  let got op = Xmlac_xml.Writer.tree_to_string (Update.apply_to_tree t op) in
  check Alcotest.string "replace" "<a><b>x</b><z>n</z></a>"
    (got (Update.Replace_subtree ([ 1 ], Tree.parse "<z>n</z>")));
  check Alcotest.string "delete" "<a><c><d>y</d></c></a>"
    (got (Update.Delete_subtree [ 0 ]));
  check Alcotest.string "insert" "<a><b>x</b><n></n><c><d>y</d></c></a>"
    (got (Update.Insert_child ([], 1, Tree.parse "<n/>")));
  check Alcotest.string "append" "<a><b>x</b><c><d>y</d></c><n></n></a>"
    (got (Update.Insert_child ([], 2, Tree.parse "<n/>")));
  check Alcotest.string "set text" "<a><b>X2</b><c><d>y</d></c></a>"
    (got (Update.Set_text ([ 0; 0 ], "X2")))

let test_update_rejects_bad_paths () =
  let t = Tree.parse "<a><b>x</b></a>" in
  let expect_invalid op =
    match Update.apply_to_tree t op with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (Update.Delete_subtree []);
  expect_invalid (Update.Delete_subtree [ 5 ]);
  expect_invalid (Update.Set_text ([ 0 ], "z"));
  expect_invalid (Update.Insert_child ([ 0; 0 ], 0, Tree.parse "<q/>"));
  expect_invalid (Update.Insert_child ([], 9, Tree.parse "<q/>"))

let gen_update_case =
  QCheck2.Gen.(
    pair Testkit.gen_tree
      (oneof
         [
           map (fun t -> Update.Insert_child ([], 0, t)) Testkit.gen_tree;
           return (Update.Set_text ([ 0 ], "patched"));
           return (Update.Delete_subtree [ 0 ]);
           map (fun t -> Update.Replace_subtree ([ 0 ], t)) Testkit.gen_tree;
         ]))

let prop_update_encoded_correct layout =
  qtest ~count:200
    (Layout.to_string layout ^ " update_encoded ≡ apply_to_tree")
    gen_update_case
    ~print:(fun (t, _) -> Testkit.tree_print t)
    (fun (tree, op) ->
      (* only run ops that are valid on this tree *)
      match Update.apply_to_tree tree op with
      | exception Invalid_argument _ -> true
      | expected ->
          let encoded = Encoder.encode ~layout tree in
          let encoded', _cost = Update.update_encoded ~layout encoded op in
          Tree.equal expected (Update.decode_tree encoded'))

let test_update_cost_localized () =
  (* same-length text patch: sizes unchanged, rewrite stays local *)
  let tree =
    Tree.parse
      "<r><pad><x>aaaaaaaaaaaaaaaa</x></pad><mid>hello</mid><pad2><y>bbbbbbbbbbbbbbbb</y></pad2></r>"
  in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  let _, cost =
    Update.update_encoded ~layout:Layout.Tcsbr encoded
      (Update.Set_text ([ 1; 0 ], "HELLO"))
  in
  check bool_t "no dictionary change" false cost.Update.dictionary_changed;
  check Alcotest.int "sizes preserved" cost.Update.old_bytes cost.Update.new_bytes;
  check bool_t "rewrite is local" true
    (cost.Update.rewritten_bytes <= 16 && cost.Update.unchanged_prefix > 0
   && cost.Update.unchanged_suffix > 0)

let test_update_cost_dictionary_change () =
  let tree = Tree.parse "<r><a>x</a><a>y</a></r>" in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  let _, cost =
    Update.update_encoded ~layout:Layout.Tcsbr encoded
      (Update.Insert_child ([], 0, Tree.parse "<brandnew>z</brandnew>"))
  in
  check bool_t "dictionary changed" true cost.Update.dictionary_changed;
  check bool_t "rewrite is large" true
    (cost.Update.rewritten_bytes > cost.Update.new_bytes / 2)

let test_update_grows_sizes_upward () =
  (* growing an inner subtree rewrites its ancestors' size fields: the
     prefix before the edit point shrinks accordingly *)
  let tree = Tree.parse "<r><a><b>x</b></a><c>tail</c></r>" in
  let encoded = Encoder.encode ~layout:Layout.Tcsbr tree in
  let _, cost =
    Update.update_encoded ~layout:Layout.Tcsbr encoded
      (Update.Insert_child ([ 0 ], 1, Tree.parse "<b>morecontent</b>"))
  in
  check bool_t "document grew" true (cost.Update.new_bytes > cost.Update.old_bytes);
  check bool_t "some shared prefix remains" true (cost.Update.unchanged_prefix > 0)

(* Stats ------------------------------------------------------------------ *)

let test_stats_ordering () =
  (* a structure-heavy doc: compression must help, TCSB must cost more than
     TCS, and TCSBR must come back below TCSB *)
  let tree =
    Tree.parse
      "<library><shelf><book><title>aa</title><author>bb</author></book>\
       <book><title>cc</title><author>dd</author></book></shelf>\
       <shelf><book><title>ee</title><author>ff</author></book></shelf></library>"
  in
  let get layout =
    (Stats.measure ~layout tree).Stats.structure_bytes
  in
  let nc = get Layout.Nc
  and tc = get Layout.Tc
  and tcs = get Layout.Tcs
  and tcsb = get Layout.Tcsb
  and tcsbr = get Layout.Tcsbr in
  check bool_t "TC < NC" true (tc < nc);
  check bool_t "TCS >= TC" true (tcs >= tc);
  check bool_t "TCSB >= TCS" true (tcsb >= tcs);
  check bool_t "TCSBR <= TCSB" true (tcsbr <= tcsb)

let test_stats_text_accounting () =
  let tree = Tree.parse "<a><b>hello</b><c>world</c></a>" in
  let s = Stats.measure ~layout:Layout.Tcsbr tree in
  check int_t "text bytes" 10 s.Stats.text_bytes;
  check int_t "structure = encoded - text" s.Stats.structure_bytes
    (s.Stats.encoded_bytes - 10)

let prop_all_layouts_measure =
  qtest ~count:100 "measurement works for every layout on any tree"
    Testkit.gen_tree (fun tree ->
      let all = Stats.measure_all tree in
      List.length all = 5
      && List.for_all (fun s -> s.Stats.encoded_bytes > 0) all)

let () =
  Alcotest.run "skip_index"
    [
      ( "bitio",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "manual roundtrip" `Quick test_bitio_roundtrip_manual;
          Alcotest.test_case "reader seek" `Quick test_reader_seek;
          Alcotest.test_case "reader bounds" `Quick test_reader_bounds;
          prop_bitio_roundtrip;
          prop_varint_roundtrip;
        ] );
      ("dict", [ Alcotest.test_case "basic + serialization" `Quick test_dict ]);
      ( "codec",
        [
          Alcotest.test_case "sample roundtrips" `Quick test_roundtrips;
          Alcotest.test_case "NC is raw XML" `Quick test_nc_is_xml;
          Alcotest.test_case "attributes rejected" `Quick test_attributes_rejected;
        ]
        @ List.map prop_roundtrip decodable );
      ( "desctags",
        [
          Alcotest.test_case "TCSBR example" `Quick test_desctags_tcsbr;
          Alcotest.test_case "TCS has no bitmaps" `Quick test_desctags_absent_for_tcs;
          prop_desctags Layout.Tcsb;
          prop_desctags Layout.Tcsbr;
        ] );
      ( "skipping",
        [
          Alcotest.test_case "skip hides content" `Quick test_skip_subtree;
          Alcotest.test_case "TC cannot skip" `Quick test_skip_not_available_in_tc;
          Alcotest.test_case "skip needs a Start" `Quick test_skip_requires_start_position;
          prop_skip_preserves_siblings;
        ] );
      ( "handles",
        [
          Alcotest.test_case "read-back" `Quick test_subtree_handle_readback;
          prop_handle_readback;
          Alcotest.test_case "rest handle + read_range" `Quick test_rest_handle_and_read_range;
          Alcotest.test_case "rest handle needs an open element" `Quick
            test_rest_handle_when_nothing_open;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "corrupt input rejected" `Quick test_decoder_rejects_corrupt_input;
          Alcotest.test_case "size-field width boundaries" `Quick
            test_fixpoint_on_power_of_two_boundaries;
          Alcotest.test_case "fixpoint widening path" `Quick
            test_fixpoint_widening_path;
          Alcotest.test_case "wide documents" `Quick test_huge_fanout_roundtrip;
        ] );
      ( "updates",
        [
          Alcotest.test_case "apply semantics" `Quick test_update_apply_semantics;
          Alcotest.test_case "bad paths rejected" `Quick test_update_rejects_bad_paths;
          Alcotest.test_case "localized cost" `Quick test_update_cost_localized;
          Alcotest.test_case "dictionary change cost" `Quick test_update_cost_dictionary_change;
          Alcotest.test_case "size growth propagates" `Quick test_update_grows_sizes_upward;
          prop_update_encoded_correct Layout.Tcs;
          prop_update_encoded_correct Layout.Tcsb;
          prop_update_encoded_correct Layout.Tcsbr;
        ] );
      ( "stats",
        [
          Alcotest.test_case "layout ordering" `Quick test_stats_ordering;
          Alcotest.test_case "text accounting" `Quick test_stats_text_accounting;
          prop_all_layouts_measure;
        ] );
    ]
