(* Tests for the SOE simulator: Table 1 cost model, the terminal↔SOE channel
   (cost accounting + genuine integrity verification), and end-to-end
   sessions (publish, evaluate, LWB). *)

open Xmlac_soe
module Tree = Xmlac_xml.Tree
module Container = Xmlac_crypto.Secure_container
module Layout = Xmlac_skip_index.Layout
module Decoder = Xmlac_skip_index.Decoder
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let key = Xmlac_crypto.Des.Triple.key_of_string "0123456789abcdefFEDCBA98"

let payload n = String.init n (fun i -> Char.chr ((i * 37) mod 251))

(* Cost model ------------------------------------------------------------- *)

let test_table1_constants () =
  let hw = Cost_model.of_context Cost_model.Hardware in
  check (Alcotest.float 1.) "hardware comm 0.5 MB/s" (0.5 *. 1024. *. 1024.)
    hw.Cost_model.comm_bytes_per_s;
  check (Alcotest.float 1.) "hardware decrypt 0.15 MB/s" (0.15 *. 1024. *. 1024.)
    hw.Cost_model.decrypt_bytes_per_s;
  let inet = Cost_model.of_context Cost_model.Software_internet in
  check (Alcotest.float 1.) "internet comm 0.1 MB/s" (0.1 *. 1024. *. 1024.)
    inet.Cost_model.comm_bytes_per_s;
  let lan = Cost_model.of_context Cost_model.Software_lan in
  check (Alcotest.float 1.) "lan comm 10 MB/s" (10. *. 1024. *. 1024.)
    lan.Cost_model.comm_bytes_per_s;
  check (Alcotest.float 1.) "software decrypt 1.2 MB/s" (1.2 *. 1024. *. 1024.)
    lan.Cost_model.decrypt_bytes_per_s;
  check int_t "three contexts" 3 (List.length Cost_model.table1)

let test_breakdown_math () =
  let hw = Cost_model.of_context Cost_model.Hardware in
  let b =
    Cost_model.breakdown hw
      ~bytes_in:(512 * 1024)
      ~bytes_decrypted:0 ~bytes_hashed:0 ~transitions:0 ~events:0
  in
  check (Alcotest.float 0.001) "512KB over 0.5MB/s = 1s" 1.0 b.Cost_model.communication_s;
  check (Alcotest.float 0.001) "total = sum" 1.0 b.Cost_model.total_s;
  let b2 =
    Cost_model.breakdown hw ~bytes_in:0 ~bytes_decrypted:0 ~bytes_hashed:0
      ~transitions:1_000_000 ~events:0
  in
  check bool_t "transitions cost time" true (b2.Cost_model.access_control_s > 0.)

(* Channel ---------------------------------------------------------------- *)

let read_all src =
  let open Xmlac_skip_index.Decoder in
  src.read ~pos:0 ~len:src.length

let channel_roundtrip scheme verify () =
  let p = payload 9000 in
  let container =
    Container.encrypt ~chunk_size:1024 ~fragment_size:128 ~scheme ~key p
  in
  let counters = Channel.fresh_counters () in
  let src = Channel.source ~verify ~container ~key counters in
  check Alcotest.string
    (Printf.sprintf "%s verify=%b roundtrip" (Container.scheme_to_string scheme) verify)
    p (read_all src);
  check bool_t "communication happened" true (counters.Channel.bytes_to_soe > 0);
  check bool_t "decryption happened" true (counters.Channel.bytes_decrypted > 0)

let test_channel_random_access_costs () =
  let p = payload 20480 in
  let container =
    Container.encrypt ~chunk_size:2048 ~fragment_size:256
      ~scheme:Container.Ecb_mht ~key p
  in
  (* reading a tiny window should cost far less than the whole payload *)
  let counters = Channel.fresh_counters () in
  let src = Channel.source ~container ~key counters in
  let got = src.Decoder.read ~pos:10_000 ~len:64 in
  check Alcotest.string "window content" (String.sub p 10_000 64) got;
  check bool_t "partial read stays far below payload size" true
    (counters.Channel.bytes_to_soe < 2048);
  check bool_t "decrypts only covering blocks + digest" true
    (counters.Channel.bytes_decrypted <= 64 + 16 + 24)

let test_channel_cache_avoids_refetch () =
  let p = payload 4096 in
  let container =
    Container.encrypt ~chunk_size:1024 ~fragment_size:128
      ~scheme:Container.Ecb_mht ~key p
  in
  let counters = Channel.fresh_counters () in
  let src = Channel.source ~container ~key counters in
  ignore (src.Decoder.read ~pos:0 ~len:128);
  let after_first = counters.Channel.bytes_to_soe in
  ignore (src.Decoder.read ~pos:0 ~len:128);
  check int_t "second identical read is free" after_first
    counters.Channel.bytes_to_soe

let test_channel_tamper_detected () =
  List.iter
    (fun scheme ->
      let p = payload 6000 in
      let container =
        Container.encrypt ~chunk_size:1024 ~fragment_size:128 ~scheme ~key p
      in
      let tampered =
        Container.substitute_block container ~chunk:2 ~block:3
          (String.make 8 'Z')
      in
      let counters = Channel.fresh_counters () in
      let src = Channel.source ~container:tampered ~key counters in
      match read_all src with
      | exception Container.Integrity_failure _ -> ()
      | _ ->
          Alcotest.failf "%s: tampering not detected"
            (Container.scheme_to_string scheme))
    [ Container.Ecb_mht; Container.Cbc_sha; Container.Cbc_shac ]

let test_channel_ecb_has_no_detection () =
  let p = payload 3000 in
  let container =
    Container.encrypt ~chunk_size:1024 ~fragment_size:128 ~scheme:Container.Ecb
      ~key p
  in
  let tampered =
    Container.substitute_block container ~chunk:0 ~block:0 (String.make 8 'Z')
  in
  let counters = Channel.fresh_counters () in
  let src = Channel.source ~container:tampered ~key counters in
  let out = read_all src in
  check bool_t "ECB reads garbage silently" true (not (String.equal out p))

let test_cbc_sha_decrypts_whole_chunks () =
  let p = payload 8192 in
  let make scheme =
    let container =
      Container.encrypt ~chunk_size:2048 ~fragment_size:256 ~scheme ~key p
    in
    let counters = Channel.fresh_counters () in
    let src = Channel.source ~container ~key counters in
    ignore (src.Decoder.read ~pos:100 ~len:32);
    counters
  in
  let sha = make Container.Cbc_sha in
  let shac = make Container.Cbc_shac in
  let mht = make Container.Ecb_mht in
  check bool_t "CBC-SHA decrypts a whole chunk" true
    (sha.Channel.bytes_decrypted >= 2048);
  check bool_t "CBC-SHAC decrypts less than CBC-SHA" true
    (shac.Channel.bytes_decrypted < sha.Channel.bytes_decrypted);
  check bool_t "ECB-MHT transfers less than the CBC schemes" true
    (mht.Channel.bytes_to_soe < shac.Channel.bytes_to_soe)

(* Sessions --------------------------------------------------------------- *)

let small_hospital = Xmlac_workload.Hospital.generate ~seed:7
    ~config:{ Xmlac_workload.Hospital.default_config with folders = 12 } ()

let config = Session.default_config ()

let test_session_matches_oracle () =
  let policies =
    [
      ("secretary", Xmlac_workload.Profiles.secretary);
      ("doctor", Xmlac_workload.Profiles.doctor ~user:"dr00");
      ("researcher", Xmlac_workload.Profiles.researcher ());
    ]
  in
  let published = Session.publish config ~layout:Layout.Tcsbr small_hospital in
  List.iter
    (fun (name, policy) ->
      let m = Session.evaluate config published policy in
      let got =
        match m.Session.events with
        | [] -> None
        | evs -> Some (Tree.of_events evs)
      in
      let expected = Xmlac_core.Oracle.authorized_view policy small_hospital in
      let ok =
        match (got, expected) with
        | None, None -> true
        | Some a, Some b -> Tree.equal a b
        | _ -> false
      in
      if not ok then Alcotest.failf "%s: SOE session diverges from oracle" name)
    policies

let test_bf_reads_everything_tcsbr_reads_less () =
  let policy = Xmlac_workload.Profiles.secretary in
  let bf_pub = Session.publish config ~layout:Layout.Tc small_hospital in
  let skip_pub = Session.publish config ~layout:Layout.Tcsbr small_hospital in
  let bf = Session.evaluate ~strategy:"BF" config bf_pub policy in
  let skip = Session.evaluate config skip_pub policy in
  check bool_t "same view delivered" true
    (let a = Xmlac_xml.Writer.events_to_string bf.Session.events in
     let b = Xmlac_xml.Writer.events_to_string skip.Session.events in
     String.equal a b);
  check bool_t "BF transfers at least the whole payload" true
    (bf.Session.counters.Channel.bytes_to_soe >= bf_pub.Session.encoded_bytes);
  check bool_t "TCSBR transfers less than half of BF" true
    (2 * skip.Session.counters.Channel.bytes_to_soe
    < bf.Session.counters.Channel.bytes_to_soe);
  check bool_t "TCSBR is faster" true
    (skip.Session.breakdown.Cost_model.total_s
    < bf.Session.breakdown.Cost_model.total_s)

let test_lwb_is_a_lower_bound () =
  let policy = Xmlac_workload.Profiles.secretary in
  let published = Session.publish config ~layout:Layout.Tcsbr small_hospital in
  let m = Session.evaluate config published policy in
  let authorized =
    Session.authorized_encoded_bytes policy small_hospital
  in
  let lwb = Session.lwb config ~authorized_bytes:authorized in
  check bool_t "LWB below the measured strategy" true
    (lwb.Cost_model.total_s <= m.Session.breakdown.Cost_model.total_s)

let test_session_with_query () =
  let policy = Xmlac_workload.Profiles.secretary in
  let query = Xmlac_workload.Profiles.age_query ~threshold:50 in
  let published = Session.publish config ~layout:Layout.Tcsbr small_hospital in
  let m = Session.evaluate ~query config published policy in
  let expected =
    Xmlac_core.Oracle.query_view ~query policy small_hospital
  in
  let got =
    match m.Session.events with [] -> None | evs -> Some (Tree.of_events evs)
  in
  let ok =
    match (got, expected) with
    | None, None -> true
    | Some a, Some b -> Tree.equal a b
    | _ -> false
  in
  check bool_t "query session matches oracle" true ok

let test_session_integrity_end_to_end () =
  let policy = Xmlac_workload.Profiles.secretary in
  let published = Session.publish config ~layout:Layout.Tcsbr small_hospital in
  let raw = Container.to_bytes published.Session.container in
  (* flip one payload byte on the "server" *)
  let b = Bytes.of_string raw in
  let off = 22 + 100 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  let tampered =
    { published with Session.container = Container.of_bytes (Bytes.to_string b) }
  in
  match Session.evaluate config tampered policy with
  | exception Container.Integrity_failure _ -> ()
  | _ -> Alcotest.fail "tampered container evaluated successfully"

let test_publish_nc_rejected () =
  Alcotest.check_raises "NC refuses"
    (Invalid_argument "Session.publish: the NC layout cannot be evaluated")
    (fun () -> ignore (Session.publish config ~layout:Layout.Nc small_hospital))

let test_integrity_scheme_ordering () =
  (* Figure 11 shape: ECB < ECB-MHT < CBC-SHAC < CBC-SHA for a selective
     policy *)
  let policy = Xmlac_workload.Profiles.secretary in
  let time scheme verify =
    let config = Session.default_config ~scheme () in
    let published = Session.publish config ~layout:Layout.Tcsbr small_hospital in
    (Session.evaluate ~verify config published policy).Session.breakdown
      .Cost_model.total_s
  in
  let ecb = time Container.Ecb false in
  let mht = time Container.Ecb_mht true in
  let shac = time Container.Cbc_shac true in
  let sha = time Container.Cbc_sha true in
  check bool_t "ECB cheapest" true (ecb < mht);
  check bool_t "ECB-MHT below CBC-SHAC" true (mht < shac);
  check bool_t "CBC-SHAC below CBC-SHA" true (shac < sha)

let test_contexts_change_the_tradeoff () =
  (* the LAN context makes communication nearly free, the Internet context
     makes it dominant — the same byte counts, different orderings *)
  let b ctx =
    Cost_model.breakdown
      (Cost_model.of_context ctx)
      ~bytes_in:1_000_000 ~bytes_decrypted:200_000 ~bytes_hashed:0
      ~transitions:0 ~events:0
  in
  let hw = b Cost_model.Hardware in
  let inet = b Cost_model.Software_internet in
  let lan = b Cost_model.Software_lan in
  check bool_t "LAN is fastest" true
    (lan.Cost_model.total_s < hw.Cost_model.total_s
    && lan.Cost_model.total_s < inet.Cost_model.total_s);
  check bool_t "Internet is communication-bound" true
    (inet.Cost_model.communication_s > inet.Cost_model.decryption_s);
  check bool_t "hardware is decryption-bound at this ratio" true
    (hw.Cost_model.decryption_s > hw.Cost_model.access_control_s)

let test_cache_eviction_costs_refetches () =
  let p = payload 16384 in
  let container =
    Container.encrypt ~chunk_size:2048 ~fragment_size:256
      ~scheme:Container.Ecb_mht ~key p
  in
  let run cache_fragments =
    let counters = Channel.fresh_counters () in
    let src = Channel.source ~cache_fragments ~container ~key counters in
    (* ping-pong between two far-apart windows *)
    for _ = 1 to 5 do
      ignore (src.Decoder.read ~pos:0 ~len:256);
      ignore (src.Decoder.read ~pos:8192 ~len:256)
    done;
    counters.Channel.fragment_fetches
  in
  check bool_t "a one-fragment cache refetches, a big cache does not" true
    (run 1 > run 8)

let test_lwb_monotone_in_bytes () =
  let t n = (Session.lwb config ~authorized_bytes:n).Cost_model.total_s in
  check bool_t "monotone" true (t 1_000 < t 10_000 && t 10_000 < t 100_000)

let qtest ?(count = 150) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

let prop_full_pipeline_equals_oracle =
  (* the strongest end-to-end property: random documents and random rules,
     through skip-index encoding, 3DES encryption, the verifying channel and
     the streaming evaluator — always the oracle's view *)
  qtest "encrypted pipeline ≡ oracle on random inputs"
    (QCheck2.Gen.pair Testkit.gen_tree Testkit.gen_rules)
    ~print:(fun (t, rules) ->
      Testkit.tree_print t ^ " | " ^ Testkit.rules_print rules)
    (fun (tree, rules) ->
      let policy =
        Xmlac_core.Policy.make
          (List.mapi
             (fun i (sign, path) ->
               Xmlac_core.Rule.make
                 ~id:(Printf.sprintf "R%d" i)
                 ~sign:(if sign then Xmlac_core.Rule.Permit else Xmlac_core.Rule.Deny)
                 path)
             rules)
      in
      let published = Session.publish config ~layout:Layout.Tcsbr tree in
      let m = Session.evaluate config published policy in
      let got =
        match m.Session.events with
        | [] -> None
        | evs -> Some (Tree.of_events evs)
      in
      match (got, Xmlac_core.Oracle.authorized_view policy tree) with
      | None, None -> true
      | Some a, Some b -> Tree.equal a b
      | _ -> false)

let test_every_scheme_layout_combination () =
  let policy = Xmlac_workload.Profiles.secretary in
  let expected = Xmlac_core.Oracle.authorized_view policy small_hospital in
  List.iter
    (fun scheme ->
      List.iter
        (fun layout ->
          let config = Session.default_config ~scheme () in
          let published = Session.publish config ~layout small_hospital in
          let m =
            Session.evaluate ~verify:(scheme <> Container.Ecb) config published
              policy
          in
          let got =
            match m.Session.events with
            | [] -> None
            | evs -> Some (Tree.of_events evs)
          in
          let ok =
            match (got, expected) with
            | None, None -> true
            | Some a, Some b -> Tree.equal a b
            | _ -> false
          in
          if not ok then
            Alcotest.failf "%s × %s diverges from oracle"
              (Container.scheme_to_string scheme)
              (Layout.to_string layout))
        [ Layout.Tc; Layout.Tcs; Layout.Tcsb; Layout.Tcsbr ])
    Container.all_schemes

(* LRU cache: model-checked against a naive reference ----------------------- *)

let lru_ops_gen =
  QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 0 80) (int_range 0 15)))

(* Reference model: an MRU-first assoc list. Each op is find-then-
   insert-on-miss, the way every channel cache uses the Lru. *)
let prop_lru_model =
  qtest ~count:300 "LRU ≡ naive model" lru_ops_gen (fun (cap, ops) ->
      let stats = Lru.fresh_stats () in
      let cache = Lru.create ~capacity:cap ~stats in
      let model = ref [] in
      let hits = ref 0 and misses = ref 0 and evicted = ref 0 in
      List.iter
        (fun k ->
          (match Lru.find cache k with
          | Some v ->
              incr hits;
              if v <> 2 * k then failwith "cached value corrupted"
          | None ->
              incr misses;
              Lru.insert cache k (2 * k));
          (match List.assoc_opt k !model with
          | Some () -> model := (k, ()) :: List.remove_assoc k !model
          | None ->
              model := (k, ()) :: !model;
              if List.length !model > cap then begin
                model := List.filteri (fun i _ -> i < cap) !model;
                incr evicted
              end);
          if Lru.length cache > Lru.capacity cache then
            failwith "capacity bound violated")
        ops;
      Lru.keys_mru cache = List.map fst !model
      && stats.Lru.hits = !hits
      && stats.Lru.misses = !misses
      && stats.Lru.evicted = !evicted)

let test_lru_peek_does_not_perturb () =
  let stats = Lru.fresh_stats () in
  let cache = Lru.create ~capacity:2 ~stats in
  Lru.insert cache 1 "one";
  Lru.insert cache 2 "two";
  check bool_t "peek sees the entry" true (Lru.peek cache 1 = Some "one");
  check int_t "peek does not count a hit" 0 stats.Lru.hits;
  check bool_t "peek does not refresh recency" true
    (Lru.keys_mru cache = [ 2; 1 ]);
  (* had peek refreshed key 1, this insert would evict key 2 instead *)
  Lru.insert cache 3 "three";
  check bool_t "oldest entry evicted" true (Lru.keys_mru cache = [ 3; 2 ]);
  check int_t "eviction counted" 1 stats.Lru.evicted

let test_lru_rejects_zero_capacity () =
  match Lru.create ~capacity:0 ~stats:(Lru.fresh_stats ()) with
  | (_ : (int, int) Lru.t) -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* Worker pool --------------------------------------------------------------- *)

let test_pool_runs_all_tasks () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let n = 37 in
          let hit = Array.make n false in
          Pool.run pool (Array.init n (fun i () -> hit.(i) <- true));
          check bool_t
            (Printf.sprintf "all %d tasks ran at jobs=%d" n jobs)
            true
            (Array.for_all Fun.id hit);
          Pool.run pool (Array.init 5 (fun _ () -> ()));
          check int_t "sections counted" 2 (Pool.sections pool);
          check int_t "tasks counted" (n + 5) (Pool.tasks_run pool)))
    [ 1; 3 ]

exception Boom of int

let test_pool_exception_deterministic () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let ran = Array.make 10 false in
          let tasks =
            Array.init 10 (fun i () ->
                ran.(i) <- true;
                if i = 3 || i = 7 then raise (Boom i))
          in
          match Pool.run pool tasks with
          | () -> Alcotest.fail "expected Boom"
          | exception Boom i ->
              check int_t
                (Printf.sprintf "smallest failing index wins at jobs=%d" jobs)
                3 i;
              check bool_t "every task still ran" true (Array.for_all Fun.id ran)))
    [ 1; 4 ]

(* Determinism across --jobs ------------------------------------------------- *)

let gated_metrics m =
  List.filter (fun (n, _) -> Xmlac_obs.Gate.gated n) (Session.metrics m)

let test_jobs_determinism () =
  let doc =
    Xmlac_workload.Hospital.generate ~seed:5
      ~config:{ Xmlac_workload.Hospital.default_config with folders = 4 }
      ()
  in
  let policy = Xmlac_workload.Profiles.doctor ~user:"dr00" in
  List.iter
    (fun scheme ->
      let config =
        {
          (Session.default_config ~scheme ()) with
          Session.chunk_size = 1024;
          fragment_size = 128;
        }
      in
      let published = Session.publish config ~layout:Layout.Tcsbr doc in
      let base = Session.evaluate config published policy in
      let base_out = Xmlac_xml.Writer.events_to_string base.Session.events in
      List.iter
        (fun jobs ->
          let m = Session.evaluate ~jobs config published policy in
          check Alcotest.string
            (Printf.sprintf "%s: output bytes identical at jobs=%d"
               (Container.scheme_to_string scheme) jobs)
            base_out
            (Xmlac_xml.Writer.events_to_string m.Session.events);
          check bool_t
            (Printf.sprintf "%s: gated metrics identical at jobs=%d"
               (Container.scheme_to_string scheme) jobs)
            true
            (gated_metrics base = gated_metrics m);
          check bool_t "pool activity reported" true
            (m.Session.pool_sections > 0 && m.Session.pool_tasks > 0))
        [ 2; 4 ])
    [ Container.Ecb_mht; Container.Cbc_shac ]

let test_cache_hits_on_multi_rule_profile () =
  let doc =
    Xmlac_workload.Hospital.generate ~seed:3
      ~config:{ Xmlac_workload.Hospital.default_config with folders = 4 }
      ()
  in
  let config =
    {
      (Session.default_config ~scheme:Container.Ecb_mht ()) with
      Session.chunk_size = 1024;
      fragment_size = 128;
    }
  in
  let published = Session.publish config ~layout:Layout.Tcsbr doc in
  let m = Session.evaluate config published (Xmlac_workload.Profiles.doctor ~user:"dr00") in
  check bool_t "SOE caches hit on a multi-rule profile" true
    (m.Session.counters.Channel.cache.Lru.hits > 0)

(* Licenses ----------------------------------------------------------------- *)

let soe_key = Xmlac_crypto.Des.Triple.key_of_string "the-device-soe-master-ke"
let doc_key_bytes = "0123456789abcdefFEDCBA98"

let sample_license () =
  License.make ~valid_until:20_000 ~subject:"dr07" ~document_key:doc_key_bytes
    [
      ("D1", Xmlac_core.Rule.Permit, "//Folder/Admin");
      ("D2", Xmlac_core.Rule.Permit, "//MedActs[//RPhys = USER]");
      ("D3", Xmlac_core.Rule.Deny, "//Act[RPhys != USER]/Details");
    ]

let test_license_roundtrip () =
  let lic = sample_license () in
  let sealed = License.seal ~soe_key lic in
  match License.unseal ~soe_key sealed with
  | Error e -> Alcotest.failf "unseal failed: %s" e
  | Ok lic' ->
      check Alcotest.string "subject" lic.License.subject lic'.License.subject;
      check Alcotest.string "key" lic.License.document_key lic'.License.document_key;
      check bool_t "expiry" true (lic'.License.valid_until = Some 20_000);
      check int_t "rules" 3 (List.length lic'.License.rules)

let test_license_policy_user_resolved () =
  let lic = sample_license () in
  let p = License.policy lic in
  match Xmlac_core.Policy.streaming_compatible p with
  | Error e -> Alcotest.fail e
  | Ok () ->
      (* the policy must behave as the doctor dr07's policy *)
      let doc =
        Tree.parse
          "<r><MedActs><Act><RPhys>dr07</RPhys><x>1</x></Act></MedActs></r>"
      in
      let view = Xmlac_core.Oracle.authorized_view p doc in
      check bool_t "rules fire for the license subject" true (view <> None)

let test_license_tamper_rejected () =
  let sealed = License.seal ~soe_key (sample_license ()) in
  let b = Bytes.of_string sealed in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 1));
  (match License.unseal ~soe_key (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered license accepted");
  match License.unseal ~soe_key (String.sub sealed 0 8) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated license accepted"

let test_license_wrong_key_rejected () =
  let sealed = License.seal ~soe_key (sample_license ()) in
  let other = Xmlac_crypto.Des.Triple.key_of_string "a-completely-differentk!" in
  match License.unseal ~soe_key:other sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "license opened under the wrong key"

let test_license_expiry () =
  let lic = sample_license () in
  check bool_t "valid before" true (License.is_valid_at lic ~now:19_999);
  check bool_t "valid at limit" true (License.is_valid_at lic ~now:20_000);
  check bool_t "invalid after" false (License.is_valid_at lic ~now:20_001)

let test_license_drives_a_session () =
  (* a sealed license is everything a device needs to open a document *)
  let lic = sample_license () in
  let sealed = License.seal ~soe_key lic in
  let doc = small_hospital in
  let config =
    { (Session.default_config ()) with Session.key = License.key lic }
  in
  let published = Session.publish config ~layout:Layout.Tcsbr doc in
  match License.unseal ~soe_key sealed with
  | Error e -> Alcotest.fail e
  | Ok lic' ->
      let config' =
        { (Session.default_config ()) with Session.key = License.key lic' }
      in
      let m = Session.evaluate config' published (License.policy lic') in
      check bool_t "license-driven evaluation delivers" true
        (m.Session.result_bytes > 0)

let () =
  Alcotest.run "soe"
    [
      ( "cost-model",
        [
          Alcotest.test_case "Table 1 constants" `Quick test_table1_constants;
          Alcotest.test_case "breakdown math" `Quick test_breakdown_math;
          Alcotest.test_case "contexts change the tradeoff" `Quick
            test_contexts_change_the_tradeoff;
          Alcotest.test_case "LWB monotonicity" `Quick test_lwb_monotone_in_bytes;
        ] );
      ( "channel",
        List.concat_map
          (fun scheme ->
            List.map
              (fun verify ->
                Alcotest.test_case
                  (Printf.sprintf "roundtrip %s verify=%b"
                     (Container.scheme_to_string scheme) verify)
                  `Quick
                  (channel_roundtrip scheme verify))
              [ true; false ])
          Container.all_schemes
        @ [
            Alcotest.test_case "random access costs" `Quick test_channel_random_access_costs;
            Alcotest.test_case "cache avoids refetch" `Quick test_channel_cache_avoids_refetch;
            Alcotest.test_case "eviction costs refetches" `Quick
              test_cache_eviction_costs_refetches;
            Alcotest.test_case "tamper detected" `Quick test_channel_tamper_detected;
            Alcotest.test_case "plain ECB lacks detection" `Quick test_channel_ecb_has_no_detection;
            Alcotest.test_case "CBC decryption granularity" `Quick test_cbc_sha_decrypts_whole_chunks;
          ] );
      ( "session",
        [
          Alcotest.test_case "matches oracle" `Quick test_session_matches_oracle;
          Alcotest.test_case "BF vs TCSBR" `Quick test_bf_reads_everything_tcsbr_reads_less;
          Alcotest.test_case "LWB bound" `Quick test_lwb_is_a_lower_bound;
          Alcotest.test_case "with query" `Quick test_session_with_query;
          Alcotest.test_case "end-to-end tamper detection" `Quick test_session_integrity_end_to_end;
          Alcotest.test_case "NC rejected" `Quick test_publish_nc_rejected;
          Alcotest.test_case "Figure 11 ordering" `Quick test_integrity_scheme_ordering;
          Alcotest.test_case "all scheme × layout combinations" `Quick
            test_every_scheme_layout_combination;
          prop_full_pipeline_equals_oracle;
        ] );
      ( "lru",
        [
          prop_lru_model;
          Alcotest.test_case "peek does not perturb" `Quick
            test_lru_peek_does_not_perturb;
          Alcotest.test_case "zero capacity rejected" `Quick
            test_lru_rejects_zero_capacity;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_pool_runs_all_tasks;
          Alcotest.test_case "deterministic exception" `Quick
            test_pool_exception_deterministic;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "jobs 1/2/4 determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "cache hits on multi-rule profile" `Quick
            test_cache_hits_on_multi_rule_profile;
        ] );
      ( "license",
        [
          Alcotest.test_case "seal/unseal roundtrip" `Quick test_license_roundtrip;
          Alcotest.test_case "policy USER-resolved" `Quick test_license_policy_user_resolved;
          Alcotest.test_case "tampering rejected" `Quick test_license_tamper_rejected;
          Alcotest.test_case "wrong key rejected" `Quick test_license_wrong_key_rejected;
          Alcotest.test_case "expiry" `Quick test_license_expiry;
          Alcotest.test_case "drives a session" `Quick test_license_drives_a_session;
        ] );
    ]
