(* Tests for the fleet-telemetry subsystem: the snapshot JSON codec under
   round trips and hostile input, the admin-plane [Get_stats] frame
   cross-checked against the server's own registry, its local-only gating,
   and cross-wire trace propagation — one merged JSONL file must
   reconstruct a client→server→client timeline for every tenant. *)

open Xmlac_soe
module Wire = Xmlac_wire
module Telemetry = Xmlac_wire.Telemetry
module Container = Xmlac_crypto.Secure_container
module Layout = Xmlac_skip_index.Layout
module Hospital = Xmlac_workload.Hospital
module Profiles = Xmlac_workload.Profiles
module Json = Xmlac_obs.Json
module Trace = Xmlac_obs.Trace

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let hospital =
  Hospital.generate ~seed:11
    ~config:{ Hospital.default_config with folders = 6 }
    ()

let cfg scheme =
  let c = Session.default_config ~scheme () in
  { c with Session.chunk_size = 512; fragment_size = 64 }

let events_string (m : Session.measurement) =
  Xmlac_xml.Writer.events_to_string m.Session.events

(* a two-tenant server: the same document published under both ids, so
   per-tenant attribution (not content) is what distinguishes them *)
let tenants = [ "alpha"; "beta" ]

let two_tenant_server () =
  let published =
    Session.publish (cfg Container.Ecb_mht) ~layout:Layout.Tcsbr hospital
  in
  let server = Wire.Server.create () in
  List.iter
    (fun id -> Wire.Server.publish server ~id published.Session.container)
    tenants;
  server

let near tol a b = Float.abs (a -. b) <= tol

let check_views_agree (frame : Telemetry.view) (own : Telemetry.view) =
  check int_t "same tenant count" (List.length own.Telemetry.tenants)
    (List.length frame.Telemetry.tenants);
  List.iter2
    (fun (f : Telemetry.tenant_view) (o : Telemetry.tenant_view) ->
      check string_t "tenant id" o.Telemetry.tv_id f.Telemetry.tv_id;
      check int_t "tenant generation" o.tv_generation f.tv_generation;
      check int_t "tenant sessions" o.tv_sessions f.tv_sessions;
      check int_t "tenant requests" o.tv_requests f.tv_requests;
      check int_t "tenant errors" o.tv_errors f.tv_errors;
      check int_t "tenant cache hits" o.tv_cache_hits f.tv_cache_hits;
      check int_t "tenant cache misses" o.tv_cache_misses f.tv_cache_misses;
      check int_t "tenant reply bytes" o.tv_reply_bytes f.tv_reply_bytes;
      check int_t "service count" o.tv_service.Telemetry.sv_count
        f.tv_service.Telemetry.sv_count;
      (* float quantiles survive one JSON round trip of the same snapshot *)
      check bool_t "service p50 agrees" true
        (near 1e-9 o.tv_service.Telemetry.sv_p50_s
           f.tv_service.Telemetry.sv_p50_s);
      check bool_t "service p99 agrees" true
        (near 1e-9 o.tv_service.Telemetry.sv_p99_s
           f.tv_service.Telemetry.sv_p99_s))
    frame.Telemetry.tenants own.Telemetry.tenants;
  check int_t "server requests" own.Telemetry.server.Telemetry.sr_requests
    frame.Telemetry.server.Telemetry.sr_requests;
  check int_t "server admitted" own.Telemetry.server.Telemetry.sr_admitted
    frame.Telemetry.server.Telemetry.sr_admitted

(* The Stats frame against the registry's own snapshot ------------------- *)

let test_stats_frame_cross_check () =
  let server = two_tenant_server () in
  let cfg0 = cfg Container.Ecb_mht in
  (* one SOE session per tenant, so both rows carry real traffic *)
  List.iter
    (fun id ->
      let r =
        Remote.connect ~container:id (Wire.Server.loopback_connector server)
      in
      let m = Session.evaluate_remote cfg0 r (Profiles.doctor ~user:"dr00") in
      check bool_t "session produced output" true
        (String.length (events_string m) > 0);
      Remote.close r)
    tenants;
  let admin = Wire.Client.connect (Wire.Server.loopback_connector server) in
  let doc = Wire.Client.fetch_stats admin in
  let frame =
    match Telemetry.of_string doc with
    | Ok v -> v
    | Error e -> Alcotest.failf "stats reply did not decode: %s" e
  in
  (* the server's own snapshot, taken while the admin connection is still
     open so the active count matches the frame's *)
  let own = Wire.Server.telemetry_snapshot server in
  check_views_agree frame own;
  (* and the numbers are live, not a zeroed shell *)
  check int_t "both tenants present" 2 (List.length frame.Telemetry.tenants);
  List.iter
    (fun (tv : Telemetry.tenant_view) ->
      check bool_t "tenant saw requests" true (tv.Telemetry.tv_requests > 0);
      check bool_t "tenant saw a session" true (tv.Telemetry.tv_sessions >= 1);
      check bool_t "reply bytes counted" true (tv.Telemetry.tv_reply_bytes > 0);
      check int_t "service histogram counted every request"
        tv.Telemetry.tv_requests tv.Telemetry.tv_service.Telemetry.sv_count;
      check bool_t "quantiles ordered" true
        (tv.Telemetry.tv_service.Telemetry.sv_p50_s
        <= tv.Telemetry.tv_service.Telemetry.sv_p99_s))
    frame.Telemetry.tenants;
  check int_t "two containers" 2 frame.Telemetry.server.Telemetry.sr_containers;
  check bool_t "admissions counted" true
    (frame.Telemetry.server.Telemetry.sr_admitted >= 3);
  Wire.Client.close admin

(* JSON codec: round trip and hostile input ------------------------------ *)

let test_snapshot_roundtrip () =
  let server = two_tenant_server () in
  let r =
    Remote.connect ~container:"beta" (Wire.Server.loopback_connector server)
  in
  let (_ : Session.measurement) =
    Session.evaluate_remote (cfg Container.Ecb_mht) r Profiles.secretary
  in
  Remote.close r;
  let v = Wire.Server.telemetry_snapshot server in
  match Telemetry.of_string (Telemetry.to_string v) with
  | Error e -> Alcotest.failf "snapshot did not round-trip: %s" e
  | Ok v' ->
      (* re-encoding the decoded view is byte-identical: the codec is its
         own canonical form *)
      check string_t "canonical round trip" (Telemetry.to_string v)
        (Telemetry.to_string v');
      check int_t "tenant rows preserved" (List.length v.Telemetry.tenants)
        (List.length v'.Telemetry.tenants)

let test_hostile_snapshot_rejected () =
  let reject label doc =
    match Telemetry.of_string doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must not decode" label
  in
  reject "empty input" "";
  reject "non-JSON" "not json at all";
  reject "missing schema" "{}";
  reject "wrong schema" "{\"schema\":\"xwtp.telemetry.v999\"}";
  reject "missing server block" "{\"schema\":\"xwtp.telemetry.v1\"}";
  (* a structurally valid document with one counter flipped negative *)
  let server = two_tenant_server () in
  let v = Wire.Server.telemetry_snapshot server in
  let mutate = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "server", Json.Obj sf ->
                   ( "server",
                     Json.Obj
                       (List.map
                          (function
                            | "admitted", Json.Int _ ->
                                ("admitted", Json.Int (-1))
                            | f -> f)
                          sf) )
               | f -> f)
             fields)
    | j -> j
  in
  reject "negative counter" (Json.to_string (mutate (Telemetry.to_json v)));
  (* tenants must be a list, not a scalar *)
  let break_tenants = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "tenants", _ -> ("tenants", Json.Int 3) | f -> f)
             fields)
    | j -> j
  in
  reject "scalar tenants"
    (Json.to_string (break_tenants (Telemetry.to_json v)))

(* Local-only gating ------------------------------------------------------ *)

(* A full-duplex in-memory pipe pair; neither end claims [local], so the
   server side sees exactly what it would see from an off-box peer. *)
let pipe_pair () =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let mk r w peer =
    Wire.Transport.make
      ~read:(fun buf off len -> Unix.read r buf off len)
      ~write:(fun s ->
        let b = Bytes.unsafe_of_string s in
        let rec go off =
          if off < Bytes.length b then
            go (off + Unix.write w b off (Bytes.length b - off))
        in
        go 0)
      ~close:(fun () ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        try Unix.close w with Unix.Unix_error _ -> ())
      ~peer ()
  in
  (mk s2c_r c2s_w "pipe-client", mk c2s_r s2c_w "pipe-server")

let test_stats_requires_local () =
  let server = two_tenant_server () in
  (* the loopback connector is local by construction: stats are served *)
  let admin = Wire.Client.connect (Wire.Server.loopback_connector server) in
  check bool_t "local transport gets stats" true
    (String.length (Wire.Client.fetch_stats admin) > 0);
  Wire.Client.close admin;
  (* the same server over a non-local transport refuses, with the session
     otherwise intact *)
  let client_tr, server_tr = pipe_pair () in
  check bool_t "pipe transport is not local" false
    (Wire.Transport.local server_tr);
  let th =
    Thread.create (fun () -> Wire.Server.serve_connection server server_tr) ()
  in
  let c = Wire.Client.connect (fun () -> client_tr) in
  (match Wire.Client.fetch_stats c with
  | (_ : string) -> Alcotest.fail "non-local transport was served stats"
  | exception Wire.Error.Wire (Wire.Error.Server { code; _ }) ->
      check int_t "refused as unsupported" Wire.Protocol.err_unsupported code);
  (* the refusal is a reply, not a hang-up: data requests still work *)
  check bool_t "session still serves data" true
    (String.length (Wire.Client.fetch_digest c ~chunk:0) > 0);
  Wire.Client.close c;
  Thread.join th

(* Cross-wire trace timeline --------------------------------------------- *)

type span_event = {
  ev_name : string;  (* "span.start" / "span.end" / point-event name *)
  ev_span_name : string;
  ev_trace : string;
  ev_span : int;
  ev_parent : int option;
}

let parse_trace_file path =
  let lines =
    String.split_on_char '\n'
      (In_channel.with_open_bin path In_channel.input_all)
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.filter_map
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "unparseable trace line: %s: %s" e line
      | Ok j ->
          let str name =
            match Option.bind (Json.member name j) Json.to_string_opt with
            | Some s -> s
            | None -> ""
          in
          let num name =
            Option.bind (Json.member name j) Json.to_int_opt
          in
          Some
            {
              ev_name = str "event";
              ev_span_name = str "name";
              ev_trace = str "trace";
              ev_span = (match num "span" with Some s -> s | None -> 0);
              ev_parent = num "parent";
            })
    lines

(* A traced fleet run over real sockets and mux framing; the single JSONL
   file must link every tenant's client-side wire.request span to a
   server.request span via the frame-carried span id, with both spans
   closed — the acceptance bar for "one trace file reconstructs the
   request timeline across the wire". *)
let test_trace_timeline () =
  let cfg0 = cfg Container.Ecb_mht in
  let published = Session.publish cfg0 ~layout:Layout.Tcsbr hospital in
  let reference =
    events_string (Session.evaluate cfg0 published (Profiles.doctor ~user:"dr00"))
  in
  let server = Wire.Server.create () in
  List.iter
    (fun id -> Wire.Server.publish server ~id published.Session.container)
    tenants;
  let tmp = Filename.temp_file "xmlac_telemetry" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Trace.with_jsonl_file tmp (fun () ->
          let listener =
            Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0))
          in
          let stop = ref false in
          let th =
            Thread.create
              (fun () ->
                try Wire.Server.serve ~stop server listener
                with Wire.Error.Wire _ -> ())
              ()
          in
          Fun.protect
            ~finally:(fun () ->
              stop := true;
              Thread.join th;
              Wire.Transport.close_listener listener)
            (fun () ->
              let connector () =
                Wire.Transport.connect (Wire.Transport.bound_addr listener)
              in
              let mux = Wire.Mux.connect ~trace:"ep-0" connector in
              check bool_t "traced probe still granted mux" true
                (Wire.Mux.is_mux mux);
              List.iter
                (fun id ->
                  let r =
                    Remote.connect ~container:id ~trace_id:("tenant-" ^ id)
                      (Wire.Mux.session mux)
                  in
                  check bool_t "trace granted" true (Remote.trace_granted r);
                  let m =
                    Session.evaluate_remote cfg0 r
                      (Profiles.doctor ~user:"dr00")
                  in
                  check string_t "traced run is byte-identical to local"
                    reference (events_string m);
                  Remote.close r)
                tenants;
              Wire.Mux.close mux));
      (* the server threads have joined and the sink is flushed: judge the
         file *)
      let events = parse_trace_file tmp in
      let ends =
        List.filter_map
          (fun e -> if e.ev_name = "span.end" then Some e.ev_span else None)
          events
      in
      List.iter
        (fun id ->
          let trace = "tenant-" ^ id in
          let client_spans =
            List.filter_map
              (fun e ->
                if
                  e.ev_name = "span.start"
                  && e.ev_span_name = "wire.request"
                  && e.ev_trace = trace
                then Some e.ev_span
                else None)
              events
          in
          check bool_t (trace ^ ": client spans present") true
            (client_spans <> []);
          let linked =
            List.filter
              (fun e ->
                e.ev_name = "span.start"
                && e.ev_span_name = "server.request"
                && e.ev_trace = trace
                && (match e.ev_parent with
                   | Some p -> List.mem p client_spans && List.mem p ends
                   | None -> false)
                && List.mem e.ev_span ends)
              events
          in
          check bool_t (trace ^ ": >=1 fully linked request") true
            (linked <> []);
          (* the SOE side of the same trace: channel phases on the timeline *)
          List.iter
            (fun phase ->
              check bool_t (trace ^ ": " ^ phase ^ " present") true
                (List.exists
                   (fun e -> e.ev_name = phase && e.ev_trace = trace)
                   events))
            [
              "channel.plan"; "channel.fetch"; "channel.compute";
              "channel.commit";
            ])
        tenants;
      (* server-side cache attribution events joined the same file *)
      check bool_t "server cache events present" true
        (List.exists (fun e -> e.ev_name = "server.cache") events))

let () =
  Alcotest.run "telemetry"
    [
      ( "codec",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "hostile snapshot rejected" `Quick
            test_hostile_snapshot_rejected;
        ] );
      ( "admin plane",
        [
          Alcotest.test_case "stats frame cross-check" `Quick
            test_stats_frame_cross_check;
          Alcotest.test_case "stats require a local transport" `Quick
            test_stats_requires_local;
        ] );
      ( "trace",
        [ Alcotest.test_case "cross-wire timeline" `Quick test_trace_timeline ] );
    ]
