(* Tests for the remote-terminal subsystem: protocol codecs under hostile
   bytes, loopback and socket equivalence with the in-process channel, the
   reply tamper matrix, fault injection with retry, and concurrent
   sessions against one server. *)

open Xmlac_soe
module Wire = Xmlac_wire
module Container = Xmlac_crypto.Secure_container
module Layout = Xmlac_skip_index.Layout
module Hospital = Xmlac_workload.Hospital
module Profiles = Xmlac_workload.Profiles

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let hospital =
  Hospital.generate ~seed:11
    ~config:{ Hospital.default_config with folders = 6 }
    ()

let cfg scheme =
  let c = Session.default_config ~scheme () in
  (* small chunks so even the 6-folder document spans several *)
  { c with Session.chunk_size = 512; fragment_size = 64 }

let events_string (m : Session.measurement) =
  Xmlac_xml.Writer.events_to_string m.Session.events

let wire_stats (m : Session.measurement) =
  match m.Session.wire with
  | Some w -> w
  | None -> Alcotest.fail "remote measurement carries no wire stats"

(* Protocol codecs -------------------------------------------------------- *)

let sample_requests =
  [
    Wire.Protocol.Hello
      { version = Wire.Protocol.version; container = ""; mux = false;
        trace = "" };
    Wire.Protocol.Hello
      { version = Wire.Protocol.version; container = "records"; mux = true;
        trace = "" };
    Wire.Protocol.Hello
      { version = Wire.Protocol.version; container = "records"; mux = true;
        trace = "client-42" };
    Wire.Protocol.Hello
      { version = Wire.Protocol.version; container = ""; mux = false;
        trace = String.make Wire.Protocol.max_trace_id 't' };
    Wire.Protocol.Hello { version = 1; container = ""; mux = false; trace = "" };
    Wire.Protocol.Get_fragment { chunk = 3; fragment = 7; lo = 8; hi = 64 };
    Wire.Protocol.Get_chunk { chunk = 0 };
    Wire.Protocol.Get_digest { chunk = 12 };
    Wire.Protocol.Get_hash_state { chunk = 1; fragment = 2; upto = 56 };
    Wire.Protocol.Get_siblings { chunk = 9; fragment = 0 };
    Wire.Protocol.Get_stats;
    Wire.Protocol.Batch
      [
        Wire.Protocol.Get_fragment { chunk = 1; fragment = 0; lo = 0; hi = 64 };
        Wire.Protocol.Get_digest { chunk = 1 };
        Wire.Protocol.Get_siblings { chunk = 1; fragment = 0 };
      ];
    Wire.Protocol.Bye;
  ]

let sample_responses =
  [
    Wire.Protocol.Hello_ok
      {
        Wire.Protocol.meta_version = 1;
        scheme = Container.Ecb_mht;
        chunk_size = 512;
        fragment_size = 64;
        payload_length = 5000;
        chunk_count = 10;
        integrity = true;
        batching = true;
        mux = false;
        trace = false;
        generation = 0;
        key_epoch = 0;
      };
    Wire.Protocol.Hello_ok
      {
        Wire.Protocol.meta_version = 2;
        scheme = Container.Cbc_sha;
        chunk_size = 512;
        fragment_size = 64;
        payload_length = 5000;
        chunk_count = 10;
        integrity = true;
        batching = true;
        mux = true;
        trace = true;
        generation = 0;
        key_epoch = 0;
      };
    Wire.Protocol.Hello_ok
      {
        Wire.Protocol.meta_version = 3;
        scheme = Container.Ecb_mht;
        chunk_size = 512;
        fragment_size = 64;
        payload_length = 5000;
        chunk_count = 10;
        integrity = true;
        batching = true;
        mux = false;
        trace = false;
        generation = 7;
        key_epoch = 2;
      };
    Wire.Protocol.Fragment (String.make 56 '\x42');
    Wire.Protocol.Chunk (String.make 512 '\x17');
    Wire.Protocol.Digest (String.make 24 '\x99');
    Wire.Protocol.Hash_state (String.make 29 '\x01');
    Wire.Protocol.Siblings [ String.make 20 'a'; String.make 20 'b' ];
    Wire.Protocol.Batched
      [
        Wire.Protocol.Fragment (String.make 64 '\x31');
        Wire.Protocol.Digest (String.make 24 '\x07');
        Wire.Protocol.Err { code = 2; message = "fragment 9 out of range" };
      ];
    Wire.Protocol.Bye_ok;
    Wire.Protocol.Stats_reply "{\"schema\":\"xwtp.telemetry.v1\"}";
    Wire.Protocol.Err { code = 2; message = "chunk 99 out of range" };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let again = Wire.Protocol.(decode_request (encode_request req)) in
      check bool_t "request roundtrips" true (req = again))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let again = Wire.Protocol.(decode_response (encode_response resp)) in
      check bool_t "response roundtrips" true (resp = again))
    sample_responses

(* Any byte string fed to the decoders (or the frame splitter) yields a
   value or a typed wire error; nothing else may escape. *)
let decoders_total =
  QCheck.Test.make ~count:500 ~name:"decoders are total on hostile bytes"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let probe f = match f s with _ -> true | exception Wire.Error.Wire _ -> true in
      probe Wire.Protocol.decode_request
      && probe Wire.Protocol.decode_response
      && (match Wire.Frame.split s ~off:0 with
         | _ -> true
         | exception Wire.Error.Wire _ -> true))

let test_hash_state_padding () =
  (* every encoded hash-state reply has the same size on the wire, whatever
     the serialized state length — the constant the channel charges *)
  let sizes =
    List.map
      (fun n ->
        String.length
          (Wire.Protocol.encode_response
             (Wire.Protocol.Hash_state (String.make n 'x'))))
      [ 29; 40; 92 ]
  in
  (match sizes with
  | a :: rest -> List.iter (fun b -> check int_t "constant size" a b) rest
  | [] -> ());
  match
    Wire.Protocol.(
      decode_response (encode_response (Hash_state (String.make 37 'q'))))
  with
  | Wire.Protocol.Hash_state s -> check int_t "unpadded on decode" 37 (String.length s)
  | _ -> Alcotest.fail "hash state did not roundtrip"

let test_metadata_geometry_rejects () =
  let meta chunk_count payload_length =
    {
      Wire.Protocol.meta_version = Wire.Protocol.version;
      scheme = Container.Ecb_mht;
      chunk_size = 512;
      fragment_size = 64;
      payload_length;
      chunk_count;
      integrity = true;
      batching = true;
      mux = false;
      trace = false;
      generation = 0;
      key_epoch = 0;
    }
  in
  (match Wire.Protocol.metadata_geometry (meta 10 (10 * 512)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest metadata rejected: %s" e);
  let rejected m = Result.is_error (Wire.Protocol.metadata_geometry m) in
  check bool_t "allocation bomb rejected" true
    (rejected (meta ((1 lsl 22) + 1) (((1 lsl 22) + 1) * 512)));
  check bool_t "count/length disagreement rejected" true (rejected (meta 3 100));
  check bool_t "wrong version rejected" true
    (rejected { (meta 1 100) with Wire.Protocol.meta_version = 99 });
  check bool_t "mux grant under v1 metadata rejected" true
    (rejected { (meta 1 100) with Wire.Protocol.meta_version = 1; mux = true });
  check bool_t "trace grant under v1 metadata rejected" true
    (rejected
       { (meta 1 100) with Wire.Protocol.meta_version = 1; trace = true });
  check bool_t "lying integrity flag rejected" true
    (rejected { (meta 1 100) with Wire.Protocol.integrity = false })

(* The server is total on hostile request frames: any payload gets a reply
   (or closes the session), never an exception. *)
let shared_server =
  lazy
    (let published =
       Session.publish (cfg Container.Ecb_mht) ~layout:Layout.Tcsbr hospital
     in
     Wire.Server.make published.Session.container)

let server_total =
  QCheck.Test.make ~count:500 ~name:"server handles hostile request frames"
    QCheck.(string_of_size Gen.(0 -- 32))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let server = Lazy.force shared_server in
      let reply, _closing = Wire.Server.handle_frame server s in
      match Wire.Protocol.decode_response reply with
      | _ -> true
      | exception Wire.Error.Wire _ -> false)

(* Loopback equivalence --------------------------------------------------- *)

let loopback_remote ?config:ccfg published =
  let server = Wire.Server.make published.Session.container in
  Remote.connect ?config:ccfg (Wire.Server.loopback_connector server)

let test_loopback_equivalence scheme () =
  let cfg = cfg scheme in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let policy = Profiles.doctor ~user:"dr00" in
  let local = Session.evaluate cfg published policy in
  let remote = loopback_remote published in
  let m = Session.evaluate_remote cfg remote policy in
  let meta = Remote.metadata remote in
  Remote.close remote;
  check Alcotest.string "byte-identical output" (events_string local)
    (events_string m);
  check int_t "bytes_to_soe identical to in-process channel"
    local.Session.counters.Channel.bytes_to_soe
    m.Session.counters.Channel.bytes_to_soe;
  let w = wire_stats m in
  check int_t "wire payload bytes == channel bytes_to_soe"
    m.Session.counters.Channel.bytes_to_soe w.Wire.Stats.payload_bytes;
  check bool_t "no retries on an honest terminal" true (w.Wire.Stats.retries = 0);
  check bool_t "verify_requested recorded" true
    m.Session.counters.Channel.verify_requested;
  check bool_t "verify_active reflects the scheme"
    (scheme <> Container.Ecb)
    m.Session.counters.Channel.verify_active;
  check bool_t "handshake advertises integrity honestly"
    (scheme <> Container.Ecb)
    meta.Wire.Protocol.integrity

let test_random_pairs () =
  (* >= 25 random document/policy pairs, schemes rotating, each compared
     byte-for-byte against the in-process channel *)
  let pairs = ref 0 in
  for seed = 0 to 8 do
    let doc =
      Hospital.generate ~seed
        ~config:{ Hospital.default_config with folders = 3 + (seed mod 3) }
        ()
    in
    let policies =
      [
        Profiles.secretary;
        Profiles.doctor ~user:"dr00";
        Xmlac_workload.Rule_gen.generate ~seed doc;
      ]
    in
    List.iteri
      (fun i policy ->
        let scheme =
          List.nth Container.all_schemes ((seed + i) mod 4)
        in
        let cfg = cfg scheme in
        let published = Session.publish cfg ~layout:Layout.Tcsbr doc in
        let local = Session.evaluate cfg published policy in
        let remote = loopback_remote published in
        let m = Session.evaluate_remote cfg remote policy in
        Remote.close remote;
        if not (String.equal (events_string local) (events_string m)) then
          Alcotest.failf "seed %d policy %d (%s): remote diverges from local"
            seed i
            (Container.scheme_to_string scheme);
        let w = wire_stats m in
        if w.Wire.Stats.payload_bytes
           <> m.Session.counters.Channel.bytes_to_soe
        then
          Alcotest.failf
            "seed %d policy %d (%s): wire payload %d <> channel bytes %d" seed
            i
            (Container.scheme_to_string scheme)
            w.Wire.Stats.payload_bytes
            m.Session.counters.Channel.bytes_to_soe;
        incr pairs)
      policies
  done;
  check bool_t "at least 25 pairs exercised" true (!pairs >= 25)

(* Batch (XWTP v1.1 request coalescing) ----------------------------------- *)

let test_batch_codec_limits () =
  let sub = Wire.Protocol.Get_chunk { chunk = 0 } in
  let rejected req =
    match Wire.Protocol.encode_request req with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true
  in
  check bool_t "empty batch rejected" true (rejected (Wire.Protocol.Batch []));
  check bool_t "oversized batch rejected" true
    (rejected
       (Wire.Protocol.Batch
          (List.init (Wire.Protocol.max_batch + 1) (fun _ -> sub))));
  check bool_t "full batch accepted" false
    (rejected
       (Wire.Protocol.Batch (List.init Wire.Protocol.max_batch (fun _ -> sub))));
  check bool_t "nested batch rejected" true
    (rejected (Wire.Protocol.Batch [ Wire.Protocol.Batch [ sub ] ]));
  check bool_t "Hello cannot be batched" true
    (rejected
       (Wire.Protocol.Batch
          [
            Wire.Protocol.Hello
              { version = Wire.Protocol.version; container = ""; mux = false;
                trace = "" };
          ]));
  check bool_t "Get_stats cannot be batched" true
    (rejected (Wire.Protocol.Batch [ Wire.Protocol.Get_stats ]));
  (* a hostile frame smuggling a batched Hello must be rejected at decode *)
  let smuggled =
    let sub_bytes =
      Wire.Protocol.encode_request
        (Wire.Protocol.Hello
           { version = 1; container = ""; mux = false; trace = "" })
    in
    let b = Buffer.create 16 in
    Buffer.add_char b '\x08';
    Buffer.add_string b "\x00\x01";
    Buffer.add_char b (Char.chr (String.length sub_bytes lsr 8));
    Buffer.add_char b (Char.chr (String.length sub_bytes land 0xFF));
    Buffer.add_string b sub_bytes;
    Buffer.contents b
  in
  match Wire.Protocol.decode_request smuggled with
  | _ -> Alcotest.fail "batched Hello decoded"
  | exception Wire.Error.Wire _ -> ()

let test_fetch_batch_equivalence () =
  let published =
    Session.publish (cfg Container.Ecb_mht) ~layout:Layout.Tcsbr hospital
  in
  let server = Wire.Server.make published.Session.container in
  let single = Wire.Client.connect (Wire.Server.loopback_connector server) in
  let batcher = Wire.Client.connect (Wire.Server.loopback_connector server) in
  let frag =
    Wire.Client.fetch_fragment single ~chunk:0 ~fragment:1 ~lo:0 ~hi:64
  in
  let digest = Wire.Client.fetch_digest single ~chunk:0 in
  let sibs = Wire.Client.fetch_siblings single ~chunk:0 ~fragment:1 in
  let replies =
    Wire.Client.fetch_batch batcher
      [
        Wire.Protocol.Get_fragment { chunk = 0; fragment = 1; lo = 0; hi = 64 };
        Wire.Protocol.Get_digest { chunk = 0 };
        Wire.Protocol.Get_siblings { chunk = 0; fragment = 1 };
      ]
  in
  (match replies with
  | [ Wire.Protocol.Fragment f; Wire.Protocol.Digest d; Wire.Protocol.Siblings s ]
    ->
      check Alcotest.string "batched fragment = individual fetch" frag f;
      check Alcotest.string "batched digest = individual fetch" digest d;
      check bool_t "batched siblings = individual fetch" true (sibs = s)
  | _ -> Alcotest.fail "unexpected batched reply shape");
  let ss = Wire.Client.stats single and sb = Wire.Client.stats batcher in
  check int_t "one Batch frame counted" 1 sb.Wire.Stats.batched_requests;
  check int_t "per-item payload accounting matches individual fetches"
    ss.Wire.Stats.payload_bytes sb.Wire.Stats.payload_bytes;
  check bool_t "batch saves round trips" true
    (sb.Wire.Stats.requests < ss.Wire.Stats.requests);
  Wire.Client.close single;
  Wire.Client.close batcher

let test_remote_jobs_determinism () =
  let cfg0 = cfg Container.Ecb_mht in
  let published = Session.publish cfg0 ~layout:Layout.Tcsbr hospital in
  let policy = Profiles.doctor ~user:"dr00" in
  let run jobs =
    let remote = loopback_remote published in
    let m = Session.evaluate_remote ~jobs cfg0 remote policy in
    Remote.close remote;
    m
  in
  let a = run 1 and b = run 4 in
  check Alcotest.string "byte-identical output across jobs" (events_string a)
    (events_string b);
  let gated m =
    List.filter (fun (n, _) -> Xmlac_obs.Gate.gated n) (Session.metrics m)
  in
  check bool_t "gated metrics (wire.* included) identical across jobs" true
    (gated a = gated b);
  check bool_t "prefetch coalesced requests into Batch frames" true
    ((wire_stats a).Wire.Stats.batched_requests > 0)

let test_out_of_range_is_server_error () =
  let published =
    Session.publish (cfg Container.Ecb_mht) ~layout:Layout.Tcsbr hospital
  in
  let server = Wire.Server.make published.Session.container in
  let client =
    Wire.Client.connect (Wire.Server.loopback_connector server)
  in
  (match Wire.Client.fetch_chunk client ~chunk:99999 with
  | _ -> Alcotest.fail "out-of-range chunk was served"
  | exception Wire.Error.Wire (Wire.Error.Server { code; _ }) ->
      check int_t "out-of-range error code" Wire.Protocol.err_out_of_range code);
  Wire.Client.close client

(* Tamper matrix ---------------------------------------------------------- *)

let flip i s =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.unsafe_to_string b

let drop_last n s = String.sub s 0 (String.length s - n)

(* Wrap a loopback connection so every reply payload passes through
   [mutate_frame], which returns the raw frame to deliver. *)
let mutating_connector server mutate_frame () =
  let inner = Wire.Server.loopback_connector server () in
  let pending = ref "" in
  let pos = ref 0 in
  let read buf off len =
    if !pos >= String.length !pending then begin
      let payload = Wire.Frame.read inner in
      pending := mutate_frame payload;
      pos := 0
    end;
    let avail = String.length !pending - !pos in
    let n = min len avail in
    Bytes.blit_string !pending !pos buf off n;
    pos := !pos + n;
    n
  in
  Wire.Transport.make ~read
    ~write:(fun s -> Wire.Transport.write inner s)
    ~close:(fun () -> Wire.Transport.close inner)
    ~peer:"loopback+tamper" ()

(* mutate the payload of replies with opcode [op], reframe everything;
   replies riding inside a Batched (0x88) frame are tampered in place, so
   the matrix covers the prefetch path exactly like individual fetches *)
let rec mutate_payload op f payload =
  if String.length payload = 0 then payload
  else if Char.code payload.[0] = op then f payload
  else if Char.code payload.[0] = 0x88 then begin
    let u32 s pos =
      (Char.code s.[pos] lsl 24)
      lor (Char.code s.[pos + 1] lsl 16)
      lor (Char.code s.[pos + 2] lsl 8)
      lor Char.code s.[pos + 3]
    in
    let buf = Buffer.create (String.length payload) in
    Buffer.add_string buf (String.sub payload 0 3) (* opcode + u16 count *);
    let pos = ref 3 in
    while !pos + 4 <= String.length payload do
      let len = u32 payload !pos in
      let sub = String.sub payload (!pos + 4) len in
      let sub' = mutate_payload op f sub in
      let n = String.length sub' in
      Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
      Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (n land 0xFF));
      Buffer.add_string buf sub';
      pos := !pos + 4 + len
    done;
    Buffer.contents buf
  end
  else payload

let target op f payload = Wire.Frame.encode (mutate_payload op f payload)

let tamper_matrix =
  [
    (* name, scheme, frame mutation *)
    ("fragment bytes", Container.Ecb_mht, target 0x82 (flip 1));
    ("fragment short", Container.Ecb_mht, target 0x82 (drop_last 1));
    ("chunk bytes", Container.Cbc_shac, target 0x83 (flip 9));
    ("chunk plaintext digest", Container.Cbc_sha, target 0x83 (flip 9));
    ("chunk length", Container.Cbc_sha, target 0x83 (drop_last 8));
    ("digest blob", Container.Ecb_mht, target 0x84 (flip 1));
    ("digest short", Container.Cbc_sha, target 0x84 (drop_last 1));
    ("hash state bytes", Container.Ecb_mht, target 0x85 (flip 4));
    ("hash state length field", Container.Ecb_mht, target 0x85 (flip 2));
    (* serialized total no longer matches the buffered fill — used to trip
       an assert inside SHA-1 finalization instead of a typed error *)
    ( "hash state total desync",
      Container.Ecb_mht,
      target 0x85 (fun p ->
          let b = Bytes.of_string p in
          Bytes.set b 30 (Char.chr (Char.code p.[30] lxor 0x01));
          Bytes.unsafe_to_string b) );
    ("hash state fill desync", Container.Ecb_mht, target 0x85 (flip 31));
    ("sibling digest", Container.Ecb_mht, target 0x86 (flip 3));
    ("sibling count field", Container.Ecb_mht, target 0x86 (flip 2));
    ( "sibling cover shrunk",
      Container.Ecb_mht,
      target 0x86 (fun p ->
          (* patch the count down by one and drop the last digest: decodes
             fine, but the cover no longer matches what the SOE computed *)
          let b = Bytes.of_string (drop_last 20 p) in
          let count = Char.code p.[2] - 1 in
          Bytes.set b 2 (Char.chr count);
          Bytes.unsafe_to_string b) );
    ("frame header", Container.Ecb_mht, fun p -> flip 0 (Wire.Frame.encode p));
    ("hello scheme byte", Container.Cbc_shac, target 0x81 (flip 3));
  ]

let test_tamper_matrix () =
  List.iter
    (fun (name, scheme, mutate_frame) ->
      let cfg = cfg scheme in
      let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
      let server = Wire.Server.make published.Session.container in
      let ccfg = { Wire.Client.default_config with backoff_s = 0. } in
      match
        let remote =
          Remote.connect ~config:ccfg (mutating_connector server mutate_frame)
        in
        Session.evaluate_remote cfg remote Profiles.secretary
      with
      | _ -> Alcotest.failf "%s: tampered reply went unnoticed" name
      | exception Container.Integrity_failure _ -> ()
      | exception Wire.Error.Wire _ -> ()
      (* anything else escapes and fails the test run *))
    tamper_matrix

let test_integrity_failure_not_retried () =
  (* a cryptographic mismatch must surface immediately — zero retries *)
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let server = Wire.Server.make published.Session.container in
  let remote =
    Remote.connect
      ~config:{ Wire.Client.default_config with backoff_s = 0. }
      (mutating_connector server (target 0x82 (flip 1)))
  in
  (match Session.evaluate_remote cfg remote Profiles.secretary with
  | _ -> Alcotest.fail "tampered fragment went unnoticed"
  | exception Container.Integrity_failure _ -> ()
  | exception Wire.Error.Wire _ ->
      Alcotest.fail "integrity violation surfaced as a wire error");
  let w = Remote.wire_stats remote in
  check int_t "no retries for an integrity failure" 0 w.Wire.Stats.retries

(* Fault injection -------------------------------------------------------- *)

let test_transient_fault_retried () =
  (* the first connection stalls; the retry reconnects and succeeds *)
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let local = Session.evaluate cfg published Profiles.secretary in
  let server = Wire.Server.make published.Session.container in
  let first = ref true in
  let connector () =
    let inner = Wire.Server.loopback_connector server () in
    if !first then begin
      first := false;
      let t, _ =
        Wire.Fault.wrap
          ~rng:(fun _ -> 0)
          ~plan:{ Wire.Fault.probability = 1.0; kinds = [ Wire.Fault.Stall ] }
          inner
      in
      t
    end
    else inner
  in
  let remote =
    Remote.connect
      ~config:{ Wire.Client.default_config with backoff_s = 0. }
      connector
  in
  let m = Session.evaluate_remote cfg remote Profiles.secretary in
  Remote.close remote;
  check Alcotest.string "output correct after retry" (events_string local)
    (events_string m);
  let w = wire_stats m in
  check bool_t "the stall was retried" true (w.Wire.Stats.retries >= 1);
  check bool_t "with a reconnect" true (w.Wire.Stats.reconnects >= 1)

let test_persistent_stall_is_typed () =
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let server = Wire.Server.make published.Session.container in
  let connector () =
    let t, _ =
      Wire.Fault.wrap
        ~rng:(fun _ -> 0)
        ~plan:{ Wire.Fault.probability = 1.0; kinds = [ Wire.Fault.Stall ] }
        (Wire.Server.loopback_connector server ())
    in
    t
  in
  match
    Remote.connect
      ~config:{ Wire.Client.default_config with backoff_s = 0. }
      connector
  with
  | _ -> Alcotest.fail "connect succeeded through a permanent stall"
  | exception Wire.Error.Wire (Wire.Error.Transport _) -> ()
  | exception Wire.Error.Wire e ->
      Alcotest.failf "expected a transport error, got: %s" (Wire.Error.to_string e)

let test_fault_sweep () =
  (* adversarial sweep: random faults of every kind; each run either
     produces byte-identical verified output or a typed error *)
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let reference =
    events_string (Session.evaluate cfg published Profiles.secretary)
  in
  let server = Wire.Server.make published.Session.container in
  let survived = ref 0 and rejected = ref 0 in
  (* 100 seeds: survival is a statistical property (a run survives only
     when no fault lands in verified data), and the deterministic fault
     stream shifts whenever reply shapes change — a wide sweep keeps the
     assertion meaningful across protocol evolution *)
  for seed = 0 to 99 do
    let prng = Xmlac_workload.Prng.make ~seed in
    let rng n = Xmlac_workload.Prng.int prng n in
    let connector () =
      let t, _ =
        Wire.Fault.wrap ~rng
          ~plan:{ Wire.Fault.probability = 0.2; kinds = Wire.Fault.all_kinds }
          (Wire.Server.loopback_connector server ())
      in
      t
    in
    let ccfg =
      { Wire.Client.default_config with backoff_s = 0.; attempts = 4 }
    in
    match
      let remote = Remote.connect ~config:ccfg connector in
      let m = Session.evaluate_remote cfg remote Profiles.secretary in
      Remote.close remote;
      m
    with
    | m ->
        incr survived;
        if not (String.equal reference (events_string m)) then
          Alcotest.failf "seed %d: faults corrupted verified output" seed
    | exception Wire.Error.Wire _ -> incr rejected
    | exception Container.Integrity_failure _ -> incr rejected
  done;
  check int_t "every seed accounted for" 100 (!survived + !rejected);
  check bool_t "some runs survive their faults" true (!survived > 0)

(* Concurrency and sockets ------------------------------------------------ *)

let test_concurrent_sessions () =
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let expected =
    events_string (Session.evaluate cfg published Profiles.secretary)
  in
  let server = Wire.Server.make published.Session.container in
  let n = 8 in
  let results = Array.make n "" in
  let failures = Array.make n None in
  let worker i =
    try
      let remote = Remote.connect (Wire.Server.loopback_connector server) in
      let m = Session.evaluate_remote cfg remote Profiles.secretary in
      Remote.close remote;
      results.(i) <- events_string m
    with e -> failures.(i) <- Some e
  in
  let threads = List.init n (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Array.iteri
    (fun i -> function
      | Some e -> Alcotest.failf "session %d failed: %s" i (Printexc.to_string e)
      | None -> ())
    failures;
  Array.iteri
    (fun i r ->
      if not (String.equal expected r) then
        Alcotest.failf "session %d diverges from the reference output" i)
    results;
  let totals = Wire.Server.totals server in
  check bool_t "server tallied the sessions" true
    (totals.Wire.Stats.requests > n)

let socket_equivalence addr () =
  let cfg = cfg Container.Ecb_mht in
  let published = Session.publish cfg ~layout:Layout.Tcsbr hospital in
  let expected =
    events_string (Session.evaluate cfg published Profiles.secretary)
  in
  let server = Wire.Server.make published.Session.container in
  let listener = Wire.Transport.listen addr in
  let stop = ref false in
  let server_thread =
    Thread.create (fun () -> Wire.Server.serve ~stop server listener) ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join server_thread;
      Wire.Transport.close_listener listener)
    (fun () ->
      let bound = Wire.Transport.bound_addr listener in
      let remote = Remote.connect (fun () -> Wire.Transport.connect bound) in
      let m = Session.evaluate_remote cfg remote Profiles.secretary in
      Remote.close remote;
      check Alcotest.string "socket output identical" expected (events_string m);
      let w = wire_stats m in
      check int_t "socket payload bytes == channel bytes"
        m.Session.counters.Channel.bytes_to_soe w.Wire.Stats.payload_bytes)

let test_unix_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xmlac-wire-test-%d.sock" (Unix.getpid ()))
  in
  socket_equivalence (Wire.Transport.Unix_socket path) ();
  check bool_t "socket file removed on shutdown" false (Sys.file_exists path)

let test_tcp_socket () =
  socket_equivalence (Wire.Transport.Tcp ("127.0.0.1", 0)) ()

(* Backoff: decorrelated jitter with a cumulative ceiling ----------------- *)

let float_t = Alcotest.float 1e-12

(* the schedule is a pure function of the config — these values are the
   contract; a PRNG or clamping change must show up here *)
let test_backoff_schedule_pinned () =
  let cfg seed attempts =
    { Wire.Client.default_config with attempts; retry_seed = seed }
  in
  List.iter
    (fun (c, expect) ->
      let got = Wire.Client.backoff_schedule c in
      check int_t "schedule length" (List.length expect) (List.length got);
      List.iter2 (fun e g -> check float_t "sleep pinned" e g) expect got)
    [
      ( cfg 7 6,
        [
          0.088982974839127149;
          0.053642202442364513;
          0.14991832631336527;
          0.28302928701298324;
          0.41154082612912329;
        ] );
      ( cfg 8 6,
        [
          0.11185046250316945;
          0.22474262797038635;
          0.48011133569769426;
          (* the ceiling truncates here: 0.183… tops the budget up to
             exactly backoff_cap_s, and the last sleep is 0 *)
          0.18329557382874995;
          0.;
        ] );
      ( { (cfg 7 10) with Wire.Client.backoff_cap_s = 0.2 },
        [
          0.088982974839127149;
          0.053642202442364513;
          0.057374822718508349;
          0.;
          0.;
          0.;
          0.;
          0.;
          0.;
        ] );
    ]

let test_backoff_schedule_invariants () =
  for seed = 0 to 19 do
    let c =
      { Wire.Client.default_config with attempts = 8; retry_seed = seed }
    in
    let s = Wire.Client.backoff_schedule c in
    check int_t "attempts-1 sleeps" 7 (List.length s);
    let sum = List.fold_left ( +. ) 0. s in
    check bool_t "cumulative sleep bounded by the ceiling" true
      (sum <= c.Wire.Client.backoff_cap_s +. 1e-9);
    List.iter
      (fun d ->
        check bool_t "each sleep within [0, cap]" true
          (d >= 0. && d <= c.Wire.Client.backoff_cap_s +. 1e-12))
      s;
    (* once the budget is spent, every later sleep is 0; and every
       nonzero sleep except the budget-truncated final one respects the
       base *)
    let rec zeros_only_at_tail = function
      | [] -> true
      | 0. :: tl -> List.for_all (fun d -> d = 0.) tl
      | _ :: tl -> zeros_only_at_tail tl
    in
    check bool_t "zeros only after the budget is spent" true
      (zeros_only_at_tail s);
    let rec all_but_last_respect_base = function
      | [] | [ (_ : float) ] -> true
      | d :: tl ->
          d >= c.Wire.Client.backoff_s -. 1e-12
          && all_but_last_respect_base tl
    in
    check bool_t "base respected until the budget truncates" true
      (all_but_last_respect_base (List.filter (fun d -> d <> 0.) s));
    check bool_t "deterministic in the seed" true
      (s = Wire.Client.backoff_schedule c)
  done;
  List.iter
    (fun d -> check float_t "backoff_s = 0 disables sleeping" 0. d)
    (Wire.Client.backoff_schedule
       { Wire.Client.default_config with backoff_s = 0.; attempts = 5 });
  let sched seed =
    Wire.Client.backoff_schedule
      { Wire.Client.default_config with attempts = 6; retry_seed = seed }
  in
  check bool_t "distinct seeds de-synchronize" false (sched 1 = sched 2)

let test_parse_addr () =
  (match Wire.Transport.parse_addr "unix:/tmp/t.sock" with
  | Ok (Wire.Transport.Unix_socket p) -> check Alcotest.string "path" "/tmp/t.sock" p
  | _ -> Alcotest.fail "unix addr");
  (match Wire.Transport.parse_addr "tcp:127.0.0.1:8080" with
  | Ok (Wire.Transport.Tcp (h, p)) ->
      check Alcotest.string "host" "127.0.0.1" h;
      check int_t "port" 8080 p
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun s ->
      match Wire.Transport.parse_addr s with
      | Ok _ -> Alcotest.failf "bad address %S accepted" s
      | Error _ -> ())
    [ ""; "garbage"; "unix:"; "tcp:"; "tcp:host"; "tcp:host:notaport"; "tcp::99999999" ]

(* Registry: many published containers on one server ---------------------- *)

let publish_scheme scheme =
  Session.publish (cfg scheme) ~layout:Layout.Tcsbr hospital

let test_registry () =
  let server = Wire.Server.create () in
  (match Wire.Server.metadata server with
  | (_ : Wire.Protocol.metadata) -> Alcotest.fail "empty registry has metadata"
  | exception Invalid_argument _ -> ());
  let pa = publish_scheme Container.Ecb_mht in
  let pb = publish_scheme Container.Cbc_sha in
  Wire.Server.publish server ~id:"records" pa.Session.container;
  Wire.Server.publish server ~id:"billing" pb.Session.container;
  check bool_t "ids listed in publication order" true
    (Wire.Server.container_ids server = [ "records"; "billing" ]);
  (match Wire.Server.metadata_of server "billing" with
  | Some m ->
      check bool_t "per-id metadata" true
        (m.Wire.Protocol.scheme = Container.Cbc_sha)
  | None -> Alcotest.fail "billing unpublished");
  check bool_t "unknown id has no metadata" true
    (Wire.Server.metadata_of server "nope" = None);
  (* empty and oversized ids are publication errors *)
  (match Wire.Server.publish server ~id:"" pa.Session.container with
  | () -> Alcotest.fail "empty id accepted"
  | exception Invalid_argument _ -> ());
  (match
     Wire.Server.publish server
       ~id:(String.make (Wire.Protocol.max_container_id + 1) 'x')
       pa.Session.container
   with
  | () -> Alcotest.fail "oversized id accepted"
  | exception Invalid_argument _ -> ());
  (* a named client binds its container; default binds the first *)
  let fetch ~config =
    let c = Wire.Client.connect ~config (Wire.Server.loopback_connector server) in
    let meta = Wire.Client.metadata c in
    Wire.Client.close c;
    meta.Wire.Protocol.scheme
  in
  check bool_t "default binding = first published" true
    (fetch ~config:Wire.Client.default_config = Container.Ecb_mht);
  check bool_t "named binding" true
    (fetch
       ~config:{ Wire.Client.default_config with container = "billing" }
    = Container.Cbc_sha);
  (* unknown container: refused at the handshake, typed *)
  (match
     fetch ~config:{ Wire.Client.default_config with container = "nope" }
   with
  | (_ : Container.scheme) -> Alcotest.fail "unknown container served"
  | exception Wire.Error.Wire (Wire.Error.Handshake _) -> ());
  (* unpublish: the id stops answering; republishing serves new bytes *)
  check bool_t "unpublish removes" true
    (Wire.Server.unpublish server ~id:"records");
  check bool_t "unpublish is idempotent" false
    (Wire.Server.unpublish server ~id:"records");
  (match
     fetch ~config:{ Wire.Client.default_config with container = "records" }
   with
  | (_ : Container.scheme) -> Alcotest.fail "unpublished container served"
  | exception Wire.Error.Wire (Wire.Error.Handshake _) -> ());
  Wire.Server.publish server ~id:"records" pb.Session.container;
  check bool_t "republished id serves the new container" true
    (fetch ~config:{ Wire.Client.default_config with container = "records" }
    = Container.Cbc_sha)

let test_registry_shared_cache () =
  (* two sessions of the same container share decoded-leaf cache entries:
     the second session's reads hit what the first session faulted in *)
  let server = Wire.Server.create () in
  let p = publish_scheme Container.Ecb_mht in
  Wire.Server.publish server ~id:"doc" p.Session.container;
  let run () =
    let remote = Remote.connect (Wire.Server.loopback_connector server) in
    let m = Session.evaluate_remote (cfg Container.Ecb_mht) remote Profiles.secretary in
    Remote.close remote;
    m
  in
  let (_ : Session.measurement) = run () in
  let first = Wire.Server.cache_stats server in
  let (_ : Session.measurement) = run () in
  let second = Wire.Server.cache_stats server in
  check bool_t "second session hits the shared cache" true
    (second.Xmlac_runtime.Lru.hits > first.Xmlac_runtime.Lru.hits);
  check int_t "no new misses for an already-cached container"
    first.Xmlac_runtime.Lru.misses second.Xmlac_runtime.Lru.misses

(* Admission control: typed Busy + wakeup on release ---------------------- *)

let test_busy_churn () =
  let cfg0 = cfg Container.Ecb_mht in
  let published = Session.publish cfg0 ~layout:Layout.Tcsbr hospital in
  let server = Wire.Server.make published.Session.container in
  let listener = Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0)) in
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        try Wire.Server.serve ~max_sessions:2 ~stop server listener
        with Wire.Error.Wire _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join th;
      Wire.Transport.close_listener listener)
    (fun () ->
      let bound = Wire.Transport.bound_addr listener in
      let connector () = Wire.Transport.connect bound in
      let no_retry =
        { Wire.Client.default_config with attempts = 1; backoff_s = 0. }
      in
      let c1 = Wire.Client.connect ~config:no_retry connector in
      let c2 = Wire.Client.connect ~config:no_retry connector in
      (* at the cap: the next connect is rejected immediately with the
         typed, retryable Busy — never parked on a waiting socket *)
      (match Wire.Client.connect ~config:no_retry connector with
      | (_ : Wire.Client.t) -> Alcotest.fail "over-cap connect admitted"
      | exception Wire.Error.Wire (Wire.Error.Busy _ as e) ->
          check bool_t "busy is retryable" true (Wire.Error.retryable e));
      (* release one session: a retrying client's later attempt succeeds *)
      Wire.Client.close c1;
      let retrying =
        {
          Wire.Client.default_config with
          attempts = 10;
          backoff_s = 0.01;
          backoff_cap_s = 2.0;
        }
      in
      let c3 = Wire.Client.connect ~config:retrying connector in
      check bool_t "fetch works after churn" true
        (String.length (Wire.Client.fetch_digest c3 ~chunk:0) > 0);
      Wire.Client.close c3;
      Wire.Client.close c2);
  let totals = Wire.Server.totals server in
  check bool_t "busy rejections counted" true
    (totals.Wire.Stats.busy_rejections >= 1)

(* Mux: N concurrent sessions over one connection ≡ sequential v1.1 ------- *)

(* Serve [containers] on a TCP listener, run [f], drain, then hand the
   server to [after] — totals are only fully merged once every
   connection's serve loop has ended, so counter checks belong there. *)
let with_fleet_server ?(max_sessions = 8) ?(mux = true)
    ?(after = fun (_ : Wire.Server.t) -> ()) containers f =
  let server = Wire.Server.create () in
  List.iter
    (fun (id, container) -> Wire.Server.publish server ~id container)
    containers;
  let listener = Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0)) in
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        try Wire.Server.serve ~max_sessions ~mux ~stop server listener
        with Wire.Error.Wire _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join th;
      Wire.Transport.close_listener listener;
      after server)
    (fun () ->
      f server (fun () -> Wire.Transport.connect (Wire.Transport.bound_addr listener)))

let test_mux_equivalence scheme () =
  let cfg0 = cfg scheme in
  let published = Session.publish cfg0 ~layout:Layout.Tcsbr hospital in
  let n = 4 in
  with_fleet_server
    ~after:(fun server ->
      let totals = Wire.Server.totals server in
      check bool_t "server counted the mux sessions" true
        (totals.Wire.Stats.mux_sessions >= 2 * n))
    [ ("doc", published.Session.container) ]
    (fun (_ : Wire.Server.t) connector ->
      (* the sequential XWTP v1.1 reference: plain connection, short hello *)
      let v1 () =
        let r =
          Remote.connect
            ~config:
              { Wire.Client.default_config with protocol_version = 1 }
            connector
        in
        let m = Session.evaluate_remote cfg0 r Profiles.secretary in
        check int_t "v1 metadata version" 1
          (Remote.metadata r).Wire.Protocol.meta_version;
        Remote.close r;
        m
      in
      let reference = v1 () in
      List.iter
        (fun jobs ->
          let mux = Wire.Mux.connect connector in
          check bool_t "mux granted" true (Wire.Mux.is_mux mux);
          let results = Array.make n None in
          let failures = Array.make n None in
          let worker i =
            try
              let r =
                Remote.connect ~container:"doc" (Wire.Mux.session mux)
              in
              let m = Session.evaluate_remote ~jobs cfg0 r Profiles.secretary in
              check int_t "mux metadata version" Wire.Protocol.version
                (Remote.metadata r).Wire.Protocol.meta_version;
              Remote.close r;
              results.(i) <- Some m
            with e -> failures.(i) <- Some e
          in
          let threads = List.init n (fun i -> Thread.create worker i) in
          List.iter Thread.join threads;
          Array.iteri
            (fun i -> function
              | Some e ->
                  Alcotest.failf "jobs %d session %d failed: %s" jobs i
                    (Printexc.to_string e)
              | None -> ())
            failures;
          Array.iteri
            (fun i m ->
              match m with
              | None -> Alcotest.failf "session %d produced nothing" i
              | Some m ->
                  check Alcotest.string "byte-identical to sequential v1.1"
                    (events_string reference) (events_string m);
                  check int_t "payload accounting identical to v1.1"
                    (wire_stats reference).Wire.Stats.payload_bytes
                    (wire_stats m).Wire.Stats.payload_bytes)
            results;
          Wire.Mux.close mux)
        [ 1; 4 ])

(* Downgrade negotiation matrix ------------------------------------------- *)

(* Wrap a loopback connection as a v1.1-only terminal: any v2 hello is
   answered locally with a refusal; everything else passes through to the
   real (v2) server, which answers v1 hellos in kind. By default the
   refusal is [err_bad_request] with a "trailing bytes" message — exactly
   what the real pre-fleet decoder produced, since it called [finish]
   right after the hello version and choked on the v2 hello's appended
   flags/container bytes. [~reject:err_unsupported] models a terminal
   that recognizes the offered version and refuses it explicitly. *)
let v1_only_connector ?(reject = Wire.Protocol.err_bad_request) server () =
  let inner = Wire.Server.loopback_connector server () in
  let pending = ref "" in
  let pos = ref 0 in
  let write data =
    let payload = String.sub data 4 (String.length data - 4) in
    match Wire.Protocol.decode_request payload with
    | Wire.Protocol.Hello { version; _ } when version >= 2 ->
        let message =
          if reject = Wire.Protocol.err_bad_request then
            "request: 3 trailing bytes after hello"
          else "protocol version 2 not supported"
        in
        pending :=
          String.sub !pending !pos (String.length !pending - !pos)
          ^ Wire.Frame.encode
              (Wire.Protocol.encode_response
                 (Wire.Protocol.Err { code = reject; message }));
        pos := 0
    | _ -> Wire.Transport.write inner data
    | exception Wire.Error.Wire _ -> Wire.Transport.write inner data
  in
  let read buf off len =
    if !pos >= String.length !pending then begin
      pending := Wire.Frame.encode (Wire.Frame.read inner);
      pos := 0
    end;
    let n = min len (String.length !pending - !pos) in
    Bytes.blit_string !pending !pos buf off n;
    pos := !pos + n;
    n
  in
  Wire.Transport.make ~read ~write
    ~close:(fun () -> Wire.Transport.close inner)
    ~peer:"loopback+v1only" ()

let test_downgrade_matrix () =
  let published = publish_scheme Container.Ecb_mht in
  let server = Wire.Server.create () in
  Wire.Server.publish server ~id:"doc" published.Session.container;
  let meta_of ~config connector =
    let c = Wire.Client.connect ~config connector in
    let m = Wire.Client.metadata c in
    Wire.Client.close c;
    m
  in
  let v2 = Wire.Client.default_config in
  let v1 = { Wire.Client.default_config with protocol_version = 1 } in
  (* v2 client ↔ v2 terminal: full v1.2 metadata *)
  let m = meta_of ~config:v2 (Wire.Server.loopback_connector server) in
  check int_t "v2<->v2 negotiates the full version" Wire.Protocol.version
    m.Wire.Protocol.meta_version;
  (* v1 client ↔ v2 terminal: the terminal answers in v1.1 *)
  let m = meta_of ~config:v1 (Wire.Server.loopback_connector server) in
  check int_t "v1 client gets v1 metadata" 1 m.Wire.Protocol.meta_version;
  check bool_t "no mux grant in v1 metadata" false m.Wire.Protocol.mux;
  (* v2 client ↔ v1-only terminal: one short-form retry, connected at v1.
     A genuine pre-fleet decoder refuses the v2 hello with err_bad_request
     (it cannot parse the trailing bytes); a version-aware terminal with
     err_unsupported — the client must downgrade on both. *)
  List.iter
    (fun reject ->
      let m = meta_of ~config:v2 (v1_only_connector ~reject server) in
      check int_t "v2 client downgrades to v1" 1 m.Wire.Protocol.meta_version)
    [ Wire.Protocol.err_bad_request; Wire.Protocol.err_unsupported ];
  (* a container-pinned client must refuse the downgrade: a v1 hello
     cannot name a container *)
  (match
     meta_of
       ~config:{ v2 with Wire.Client.container = "doc" }
       (v1_only_connector server)
   with
  | (_ : Wire.Protocol.metadata) ->
      Alcotest.fail "container-pinned client downgraded to v1"
  | exception Wire.Error.Wire (Wire.Error.Handshake _) -> ());
  (* a mux endpoint probing a v1-only terminal downgrades to plain
     connections — sessions still work, just unmultiplexed *)
  let mux = Wire.Mux.connect (v1_only_connector server) in
  check bool_t "mux probe downgrades" false (Wire.Mux.is_mux mux);
  let r = Remote.connect (Wire.Mux.session mux) in
  let m = Session.evaluate_remote (cfg Container.Ecb_mht) r Profiles.secretary in
  check bool_t "downgraded session still serves" true
    (String.length (events_string m) > 0);
  Remote.close r;
  Wire.Mux.close mux;
  (* a no-mux v1.2 terminal: hello succeeds at v2 but without the grant *)
  let published2 = publish_scheme Container.Ecb_mht in
  with_fleet_server ~mux:false
    [ ("doc", published2.Session.container) ]
    (fun _server connector ->
      let mux = Wire.Mux.connect connector in
      check bool_t "no-mux terminal refuses the grant" false
        (Wire.Mux.is_mux mux);
      let m = meta_of ~config:v2 connector in
      check int_t "still full-version metadata" Wire.Protocol.version
        m.Wire.Protocol.meta_version;
      check bool_t "no mux bit" false m.Wire.Protocol.mux;
      Wire.Mux.close mux)

(* An "old v1.2" terminal: speaks v2 (metadata, container binding, mux)
   but predates the trace extension, so a hello carrying the trace flag
   is refused as a malformed request — the shape of a pre-telemetry
   decoder choking on an unknown flag bit. Everything else (including the
   trace-stripped retry, and mux framing after the handshake, whose
   writes do not decode as requests) passes through untouched. *)
let reject_trace_connector inner_connector () =
  let inner = inner_connector () in
  let pending = ref "" in
  let pos = ref 0 in
  let write data =
    let payload = String.sub data 4 (String.length data - 4) in
    match Wire.Protocol.decode_request payload with
    | Wire.Protocol.Hello { version; trace; _ }
      when version >= 2 && trace <> "" ->
        pending :=
          String.sub !pending !pos (String.length !pending - !pos)
          ^ Wire.Frame.encode
              (Wire.Protocol.encode_response
                 (Wire.Protocol.Err
                    {
                      code = Wire.Protocol.err_bad_request;
                      message = "request: unknown hello flag 0x2";
                    }));
        pos := 0
    | _ -> Wire.Transport.write inner data
    | exception Wire.Error.Wire _ -> Wire.Transport.write inner data
  in
  let read buf off len =
    if !pos >= String.length !pending then begin
      pending := Wire.Frame.encode (Wire.Frame.read inner);
      pos := 0
    end;
    let n = min len (String.length !pending - !pos) in
    Bytes.blit_string !pending !pos buf off n;
    pos := !pos + n;
    n
  in
  Wire.Transport.make ~read ~write
    ~close:(fun () -> Wire.Transport.close inner)
    ~peer:"loopback+notrace" ()

(* Trace rows of the downgrade matrix: a traced client against every
   terminal generation must land on a working session with byte-identical
   evaluation — the trace extension buys linkage when granted and costs
   nothing but a handshake round trip when not. *)
let test_downgrade_trace_matrix () =
  let cfg0 = cfg Container.Ecb_mht in
  let published = publish_scheme Container.Ecb_mht in
  let reference =
    events_string (Session.evaluate cfg0 published Profiles.secretary)
  in
  let server = Wire.Server.create () in
  Wire.Server.publish server ~id:"doc" published.Session.container;
  let evaluate connector =
    let r = Remote.connect ~trace_id:"trace-dm" connector in
    let m = Session.evaluate_remote cfg0 r Profiles.secretary in
    let granted = Remote.trace_granted r in
    let meta = Remote.metadata r in
    Remote.close r;
    check Alcotest.string "byte-identical evaluation" reference
      (events_string m);
    (granted, meta)
  in
  (* v2 traced client ↔ v2 terminal: granted, id intact *)
  let granted, meta = evaluate (Wire.Server.loopback_connector server) in
  check bool_t "v1.2 terminal grants the trace" true granted;
  check int_t "still full-version metadata" Wire.Protocol.version
    meta.Wire.Protocol.meta_version;
  (* v2 traced client ↔ v1-only terminal: the strip rung fires, then the
     version ladder — connected at v1, untraced, same bytes. Both refusal
     codes a real old terminal can produce. *)
  List.iter
    (fun reject ->
      let granted, meta =
        evaluate (v1_only_connector ~reject server)
      in
      check bool_t "v1 terminal: no trace grant" false granted;
      check int_t "v1 terminal: v1 metadata" 1 meta.Wire.Protocol.meta_version)
    [ Wire.Protocol.err_bad_request; Wire.Protocol.err_unsupported ];
  (* v2 traced client ↔ pre-telemetry v1.2 terminal: the strip keeps the
     session at v2 (container binding intact), only the trace is gone *)
  let granted, meta =
    evaluate (reject_trace_connector (Wire.Server.loopback_connector server))
  in
  check bool_t "pre-telemetry terminal: no trace grant" false granted;
  check int_t "pre-telemetry terminal: still full-version metadata"
    Wire.Protocol.version meta.Wire.Protocol.meta_version;
  (* the stripped client remembers: its next hellos offer no trace *)
  let c =
    Wire.Client.connect
      ~config:{ Wire.Client.default_config with trace = "trace-dm" }
      (reject_trace_connector (Wire.Server.loopback_connector server))
  in
  check Alcotest.string "strip is sticky on the connection" ""
    (Wire.Client.trace c);
  check bool_t "stripped client reports no grant" false
    (Wire.Client.trace_granted c);
  Wire.Client.close c;
  (* a traced mux probe against the same old terminal: the strip rung
     re-probes on a fresh connection, so mux survives losing the trace *)
  let published2 = publish_scheme Container.Ecb_mht in
  with_fleet_server
    [ ("doc", published2.Session.container) ]
    (fun _server connector ->
      let mux =
        Wire.Mux.connect ~trace:"trace-dm" (reject_trace_connector connector)
      in
      check bool_t "old terminal still grants mux to a traced probe" true
        (Wire.Mux.is_mux mux);
      let r = Remote.connect ~container:"doc" (Wire.Mux.session mux) in
      let m = Session.evaluate_remote cfg0 r Profiles.secretary in
      check bool_t "mux session serves after the strip" true
        (String.length (events_string m) > 0);
      Remote.close r;
      Wire.Mux.close mux);
  (* an over-long trace id never reaches the wire *)
  match
    Wire.Mux.connect
      ~trace:(String.make (Wire.Protocol.max_trace_id + 1) 'x')
      (Wire.Server.loopback_connector server)
  with
  | (_ : Wire.Mux.t) -> Alcotest.fail "oversized trace id accepted"
  | exception Invalid_argument _ -> ()

(* Session churn on one mux connection: closing a session transport
   without a protocol Bye (the shape of the client's retry-path [drop])
   must still retire the server-side binding — otherwise a long-lived
   multiplexed connection creeps toward [max_mux_sessions] under churn
   and spuriously busy-rejects fresh sessions. *)
let test_mux_session_churn () =
  let published = publish_scheme Container.Ecb_mht in
  let server = Wire.Server.create () in
  Wire.Server.publish server ~id:"doc" published.Session.container;
  let cap = 2 in
  let listener = Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0)) in
  let th =
    Thread.create
      (fun () ->
        let tr = Wire.Transport.accept listener in
        Wire.Server.serve_connection ~max_mux_sessions:cap server tr)
      ()
  in
  let tr = Wire.Transport.connect (Wire.Transport.bound_addr listener) in
  let mux = Wire.Mux.connect (fun () -> tr) in
  check bool_t "mux granted" true (Wire.Mux.is_mux mux);
  let hello s =
    Wire.Transport.write s
      (Wire.Frame.encode
         (Wire.Protocol.encode_request
            (Wire.Protocol.Hello
               {
                 version = Wire.Protocol.version;
                 container = "";
                 mux = false;
                 trace = "";
               })));
    Wire.Protocol.decode_response (Wire.Frame.read s)
  in
  (* churn well past the cap; every close is transport-level only *)
  for i = 1 to (3 * cap) + 1 do
    let s = Wire.Mux.session mux () in
    (match hello s with
    | Wire.Protocol.Hello_ok _ -> ()
    | Wire.Protocol.Err { code; message } ->
        Alcotest.fail
          (Printf.sprintf "churned session %d refused (%d): %s" i code message)
    | _ -> Alcotest.fail "unexpected hello reply");
    Wire.Transport.close s
  done;
  (* the cap still binds for genuinely concurrent sessions… *)
  let s1 = Wire.Mux.session mux () in
  let s2 = Wire.Mux.session mux () in
  (match (hello s1, hello s2) with
  | Wire.Protocol.Hello_ok _, Wire.Protocol.Hello_ok _ -> ()
  | _ -> Alcotest.fail "concurrent sessions within the cap refused");
  let s3 = Wire.Mux.session mux () in
  (match hello s3 with
  | Wire.Protocol.Err { code; _ } when code = Wire.Protocol.err_busy -> ()
  | _ -> Alcotest.fail "session past the cap not busy-rejected");
  Wire.Transport.close s3;
  (* …and a transport-level close frees its slot for the next session *)
  Wire.Transport.close s1;
  let s4 = Wire.Mux.session mux () in
  (match hello s4 with
  | Wire.Protocol.Hello_ok _ -> ()
  | _ -> Alcotest.fail "slot freed by transport close not reusable");
  Wire.Transport.close s4;
  Wire.Transport.close s2;
  Wire.Mux.close mux;
  Thread.join th;
  Wire.Transport.close_listener listener

let () =
  Alcotest.run "wire"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "hash state padding" `Quick test_hash_state_padding;
          Alcotest.test_case "metadata validation" `Quick
            test_metadata_geometry_rejects;
          Alcotest.test_case "parse addr" `Quick test_parse_addr;
          QCheck_alcotest.to_alcotest decoders_total;
          QCheck_alcotest.to_alcotest server_total;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "schedule pinned" `Quick
            test_backoff_schedule_pinned;
          Alcotest.test_case "schedule invariants" `Quick
            test_backoff_schedule_invariants;
        ] );
      ( "registry",
        [
          Alcotest.test_case "publish/unpublish/bind" `Quick test_registry;
          Alcotest.test_case "shared leaves cache" `Quick
            test_registry_shared_cache;
        ] );
      ( "loopback",
        List.map
          (fun scheme ->
            Alcotest.test_case
              (Container.scheme_to_string scheme ^ " equivalence")
              `Quick
              (test_loopback_equivalence scheme))
          Container.all_schemes
        @ [
            Alcotest.test_case "25+ random pairs" `Slow test_random_pairs;
            Alcotest.test_case "out of range -> server error" `Quick
              test_out_of_range_is_server_error;
          ] );
      ( "batch",
        [
          Alcotest.test_case "codec limits" `Quick test_batch_codec_limits;
          Alcotest.test_case "fetch_batch ≡ individual fetches" `Quick
            test_fetch_batch_equivalence;
          Alcotest.test_case "remote jobs 1/4 determinism" `Quick
            test_remote_jobs_determinism;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "tamper matrix" `Quick test_tamper_matrix;
          Alcotest.test_case "integrity failure not retried" `Quick
            test_integrity_failure_not_retried;
          Alcotest.test_case "transient fault retried" `Quick
            test_transient_fault_retried;
          Alcotest.test_case "persistent stall is typed" `Quick
            test_persistent_stall_is_typed;
          Alcotest.test_case "fault sweep" `Slow test_fault_sweep;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "8 concurrent sessions" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "unix socket" `Quick test_unix_socket;
          Alcotest.test_case "tcp socket" `Quick test_tcp_socket;
          Alcotest.test_case "busy churn at the session cap" `Quick
            test_busy_churn;
        ] );
      ( "mux",
        List.map
          (fun scheme ->
            Alcotest.test_case
              (Container.scheme_to_string scheme ^ " mux ≡ sequential v1.1")
              `Quick
              (test_mux_equivalence scheme))
          Container.all_schemes
        @ [
            Alcotest.test_case "downgrade matrix" `Quick
              test_downgrade_matrix;
            Alcotest.test_case "downgrade matrix: trace rows" `Quick
              test_downgrade_trace_matrix;
            Alcotest.test_case "session churn retires bindings" `Quick
              test_mux_session_churn;
          ] );
    ]
